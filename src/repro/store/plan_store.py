"""Persisted execution plans: the fleet's compiled-artifact data-plane.

Every process used to re-lower its ``(matrix, schedule)`` pairs into
:class:`~repro.exec.plan.ExecutionPlan`s, so scheduling cost was paid
per process instead of per fleet.  A :class:`PlanStore` persists the
lowered arrays on disk once and lets every later process — suite
workers, services, CLI runs — **load instead of compile**, driving the
``expected_solves`` denominator of the paper's Eq. 7.1 amortized
objective toward the fleet-lifetime solve count.

Format (version :data:`PLAN_STORE_VERSION`)
-------------------------------------------
One artifact is two sibling files under the store directory:

* ``<stem>.npz`` — the plan's twelve flat arrays (batch layout, gather
  structure, diagonal, permutations, core program order, fusion
  groups), written uncompressed so members are plain aligned ``.npy``
  payloads (mmap-friendly; nothing is pickled and loads pass
  ``allow_pickle=False``);
* ``<stem>.json`` — the sidecar: format version, the exact lookup key,
  sweep direction, the matrix fingerprint, the schedule identity
  (content hash of the superstep/core assignment), the toolchain
  digest (plan-compiler source + NumPy + Python versions, mirroring
  the persistent-JIT cache key) and a content hash over the arrays
  *and* the sidecar scalars.

The store is keyed **exactly** — ``(matrix_fingerprint, scheduler,
cores, fuse_threshold, dtype)``, see :class:`PlanKey` — and the stem
embeds a hash of the full key, so lookup is a single ``stat``.

Integrity gate
--------------
A deserialized plan may **never** serve unverified.  :meth:`PlanStore
.load` rejects with a named :class:`~repro.errors.PlanArtifactError`
subclass on a version, key, toolchain or content-hash mismatch, and
every surviving plan must still pass the mandatory
:func:`repro.analysis.verify.check_plan` (unconditional — not behind
``REPRO_VALIDATE_PLANS``) before it is returned.  Cache-tier callers
(:meth:`repro.exec.PlanCache.get_or_build`) use :meth:`PlanStore.get`,
which converts every rejection into a counted miss so the caller falls
back to compiling.

Writes are crash- and race-safe like the sibling
:class:`~repro.store.store.ObservationStore`: payloads land in a
same-directory temp file and are renamed into place
(:mod:`repro.utils.atomic` semantics), the sidecar is written *after*
the npz (a sidecar is the commit record), and writers claim a key via
an exclusive-create lock file so racing processes produce exactly one
artifact per key.  Disk usage is LRU-bounded: loads touch the sidecar
mtime and :meth:`PlanStore.gc` evicts least-recently-used artifacts
beyond the byte budget (``REPRO_PLAN_STORE_MAX_BYTES``).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import re
import tempfile
import threading
import zipfile
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import (
    ConfigurationError,
    PlanArtifactCorruptError,
    PlanArtifactError,
    PlanArtifactMissingError,
    PlanArtifactStaleError,
    PlanArtifactVersionError,
    PlanVerificationError,
)
from repro.exec.plan import ExecutionPlan
from repro.obs_gate import get_obs
from repro.utils.atomic import atomic_write_json

__all__ = [
    "PLAN_STORE_ENV_VAR",
    "PLAN_STORE_MAX_BYTES_ENV_VAR",
    "PLAN_STORE_VERSION",
    "PlanKey",
    "PlanStore",
    "plan_store_from_env",
    "plan_store_key",
    "schedule_identity",
    "toolchain_digest",
]

#: Format version of plan-store artifacts; bump on incompatible layout
#: changes.  A mismatch is a named rejection, never a reinterpretation.
PLAN_STORE_VERSION = 1

#: Environment variable pointing the disk tier of every
#: :class:`~repro.exec.PlanCache` at a store directory.
PLAN_STORE_ENV_VAR = "REPRO_PLAN_STORE_DIR"

#: Environment variable bounding a store's disk usage in bytes (LRU
#: eviction beyond it; unset means unbounded).
PLAN_STORE_MAX_BYTES_ENV_VAR = "REPRO_PLAN_STORE_MAX_BYTES"

#: Meta file inside a plan-store directory.
META_FILE = "plan-store.json"

#: The ndarray fields of an :class:`ExecutionPlan`, in canonical hash
#: and serialization order.  Scalars (direction, fuse threshold,
#: singularity) travel in the sidecar.
ARRAY_FIELDS = (
    "rows",
    "batch_ptr",
    "batch_step",
    "off_ptr",
    "off_cols",
    "off_vals",
    "diag",
    "pos",
    "core_rows",
    "core_ptr",
    "row_step",
    "fused_ptr",
)

_STEM_UNSAFE = re.compile(r"[^A-Za-z0-9._-]")


def _sanitize(value: str) -> str:
    """Filesystem-safe token (stems embed key components)."""
    return _STEM_UNSAFE.sub("-", str(value))[:48].strip(".-") or "x"


def toolchain_digest() -> str:
    """Digest of everything a serialized plan's layout depends on.

    Mirrors the persistent-JIT cache key
    (:func:`repro.exec.kernels_numba.jit_cache_key`): the plan
    compiler's source plus the NumPy and Python versions.  Any change
    rejects existing artifacts as stale instead of serving arrays a
    different lowering produced.

    Examples
    --------
    >>> from repro.store.plan_store import toolchain_digest
    >>> len(toolchain_digest()), toolchain_digest() == toolchain_digest()
    (16, True)
    """
    from repro.exec import plan as plan_module

    h = hashlib.sha256()
    h.update(Path(plan_module.__file__).read_bytes())
    h.update(
        f"|numpy={np.__version__}"
        f"|python={platform.python_version()}".encode()
    )
    return h.hexdigest()[:16]


def schedule_identity(schedule) -> str:
    """Content identity of a schedule (``"__serial__"`` for ``None``).

    Hashes the per-vertex core and superstep assignments, so two
    schedules with identical content share an identity regardless of
    which scheduler object produced them — and a plan artifact can be
    cross-checked against the schedule a later process recomputed.
    """
    if schedule is None:
        return "__serial__"
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(schedule.cores).tobytes())
    h.update(np.ascontiguousarray(schedule.supersteps).tobytes())
    h.update(str(int(schedule.n_cores)).encode())
    return (
        f"sched-{int(schedule.n_cores)}x{int(schedule.n_supersteps)}-"
        f"{h.hexdigest()[:12]}"
    )


@dataclass(frozen=True)
class PlanKey:
    """The exact lookup key of one persisted plan.

    ``scheduler`` is a caller-chosen label (a scheduler registry name,
    a schedule content identity for ad-hoc schedules, ``"__serial__"``
    for serial plans); the sidecar additionally records the schedule's
    *content* identity, so a label collision is caught at load time as
    a stale artifact rather than served.
    """

    matrix_fingerprint: str
    scheduler: str
    cores: int
    fuse_threshold: int
    dtype: str = "float64"

    def as_dict(self) -> dict:
        return {
            "matrix_fingerprint": self.matrix_fingerprint,
            "scheduler": self.scheduler,
            "cores": int(self.cores),
            "fuse_threshold": int(self.fuse_threshold),
            "dtype": self.dtype,
        }

    def stem(self) -> str:
        """Deterministic artifact file stem: readable key components
        plus a hash of the exact key (sanitization is lossy; the hash
        is not)."""
        digest = hashlib.sha256(
            json.dumps(self.as_dict(), sort_keys=True).encode()
        ).hexdigest()[:10]
        return (
            f"plan-{_sanitize(self.matrix_fingerprint)}"
            f"-{_sanitize(self.scheduler)}-c{int(self.cores)}"
            f"-f{int(self.fuse_threshold)}-{_sanitize(self.dtype)}"
            f"-{digest}"
        )


def plan_store_key(
    matrix,
    schedule=None,
    *,
    scheduler: str | None = None,
    fuse_threshold: int | None = None,
    dtype: str = "float64",
    direction: str = "forward",
) -> PlanKey:
    """The :class:`PlanKey` a ``compile_plan(matrix, schedule, ...)``
    call's plan is stored under.

    ``scheduler`` defaults to the schedule's content identity
    (``"__serial__"`` for serial plans); ``fuse_threshold=None``
    resolves exactly like :func:`~repro.exec.plan.compile_plan` does
    (``REPRO_FUSE_THRESHOLD``, then the default), so the key always
    names the plan that call would produce.  A non-forward sweep is
    folded into the scheduler label — direction changes the lowering,
    so it must change the key.
    """
    # deferred imports: the tuner layer (fingerprints) sits above this
    # store module in some import chains, and the threshold resolver is
    # the compiler's own
    from repro.exec.plan import _resolve_fuse_threshold
    from repro.tuner.auto import matrix_fingerprint

    label = scheduler if scheduler is not None else schedule_identity(schedule)
    if direction != "forward":
        label = f"{label}@{direction}"
    return PlanKey(
        matrix_fingerprint=matrix_fingerprint(matrix),
        scheduler=str(label),
        cores=int(schedule.n_cores) if schedule is not None else 1,
        fuse_threshold=_resolve_fuse_threshold(fuse_threshold),
        dtype=str(dtype),
    )


def plan_store_from_env() -> "PlanStore | None":
    """The env-gated default store (``REPRO_PLAN_STORE_DIR``), or
    ``None`` when the gate is off."""
    path = os.environ.get(PLAN_STORE_ENV_VAR, "").strip()
    if not path:
        return None
    return PlanStore(path)


def _artifact_hash(arrays: dict, scalars: dict) -> str:
    """Content hash over the arrays *and* the sidecar scalars.

    Any byte flip in any array, and any tamper of a hashed sidecar
    field (direction, singularity, key, schedule identity), changes
    the digest — the corruption gate the load path enforces.
    """
    h = hashlib.sha256()
    h.update(json.dumps(scalars, sort_keys=True).encode())
    for name in ARRAY_FIELDS:
        arr = np.ascontiguousarray(arrays[name])
        h.update(f"{name}:{arr.dtype.str}:{arr.shape}\n".encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def _obs_span(name: str, **tags: object):
    obs = get_obs()
    return obs.span(name, **tags) if obs is not None else nullcontext()


class PlanStore:
    """Versioned on-disk store of compiled execution plans.

    Parameters
    ----------
    path:
        Store directory, created (with a versioned meta file) when
        missing and ``create`` is true.
    max_bytes:
        LRU disk budget; ``None`` reads ``REPRO_PLAN_STORE_MAX_BYTES``
        (unset: unbounded).  Enforced after every save and by
        :meth:`gc`.
    create:
        Refuse (:class:`~repro.errors.ConfigurationError`) instead of
        creating when the directory is missing — the read-side guard
        of the ``repro plans`` CLI verbs.

    Examples
    --------
    >>> import tempfile
    >>> from repro.exec import compile_plan
    >>> from repro.matrix.generators import narrow_band_lower
    >>> from repro.store import PlanStore, plan_store_key
    >>> L = narrow_band_lower(60, 0.2, 5.0, seed=0)
    >>> key = plan_store_key(L, None)
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     store = PlanStore(tmp)
    ...     _ = store.save(compile_plan(L), key)
    ...     loaded = store.load(key, matrix=L)
    ...     (loaded.provenance, loaded.n, store.hits)
    ('store', 60, 1)
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        max_bytes: int | None = None,
        create: bool = True,
    ) -> None:
        self.path = os.fspath(path)
        if max_bytes is None:
            env = os.environ.get(PLAN_STORE_MAX_BYTES_ENV_VAR, "").strip()
            if env:
                try:
                    max_bytes = int(env)
                except ValueError:
                    raise ConfigurationError(
                        f"{PLAN_STORE_MAX_BYTES_ENV_VAR}={env!r} is not "
                        f"an integer"
                    ) from None
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.rejects = 0
        self.saves = 0
        self.save_races = 0
        self.save_errors = 0
        self.evictions = 0
        #: Reason string of the most recent load rejection (surfaced by
        #: the CLI and tests; informational only).
        self.last_reject: str | None = None
        self._obs = get_obs()
        if not os.path.isdir(self.path):
            if os.path.exists(self.path):
                raise ConfigurationError(
                    f"plan store path {self.path!r} exists but is not "
                    "a directory"
                )
            if not create:
                raise ConfigurationError(
                    f"plan store {self.path!r} does not exist"
                )
            os.makedirs(self.path, exist_ok=True)
        self._check_meta()

    # ------------------------------------------------------------------
    # meta / layout
    # ------------------------------------------------------------------
    def _meta_path(self) -> str:
        return os.path.join(self.path, META_FILE)

    def _check_meta(self) -> None:
        meta_path = self._meta_path()
        if os.path.exists(meta_path):
            with open(meta_path, "r", encoding="utf-8") as fh:
                try:
                    meta = json.load(fh)
                except json.JSONDecodeError as exc:
                    raise ConfigurationError(
                        f"plan store meta {meta_path!s} is not valid "
                        f"JSON: {exc}"
                    ) from None
            version = meta.get("version") if isinstance(meta, dict) else None
            if version != PLAN_STORE_VERSION:
                raise ConfigurationError(
                    f"plan store {self.path!r} has version {version!r}; "
                    f"this build reads version {PLAN_STORE_VERSION}"
                )
        else:
            atomic_write_json({"version": PLAN_STORE_VERSION}, meta_path)

    def _paths(self, key: PlanKey) -> tuple[str, str, str]:
        stem = os.path.join(self.path, key.stem())
        return stem + ".npz", stem + ".json", stem + ".lock"

    def _count(self, counter: str, value: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + value)
        if self._obs is not None:
            self._obs.get_registry().counter(
                f"plan_store.{counter}"
            ).inc(value)

    # ------------------------------------------------------------------
    # save
    # ------------------------------------------------------------------
    def _sidecar_scalars(self, plan: ExecutionPlan, key: PlanKey) -> dict:
        """The hashed sidecar fields of one artifact."""
        return {
            "format_version": PLAN_STORE_VERSION,
            "key": key.as_dict(),
            "direction": plan.direction,
            "n": plan.n,
            "fuse_threshold": int(plan.fuse_threshold),
            "singular_row": int(plan.singular_row),
            "singular_reason": plan._singular_reason,
            "schedule_identity": schedule_identity(plan.schedule),
            "toolchain": toolchain_digest(),
        }

    def save(self, plan: ExecutionPlan, key: PlanKey) -> str | None:
        """Persist ``plan`` under ``key``; returns the sidecar path.

        First writer wins: when the artifact already exists, or another
        writer holds the key's exclusive-create claim, nothing is
        written and ``None`` is returned (counted as a save race) — a
        store directory raced by N processes ends up with exactly one
        artifact per key, never a torn mix of two writers' files.

        The npz lands (atomically) before the sidecar: a sidecar is the
        commit record, so readers never observe a half-written
        artifact as present.
        """
        if key.cores != plan.n_cores or key.fuse_threshold != int(
            plan.fuse_threshold
        ) or key.dtype != str(plan.off_vals.dtype):
            raise ConfigurationError(
                f"plan key {key} does not describe this plan "
                f"(cores={plan.n_cores}, "
                f"fuse_threshold={plan.fuse_threshold}, "
                f"dtype={plan.off_vals.dtype})"
            )
        npz_path, sidecar_path, lock_path = self._paths(key)
        if os.path.exists(sidecar_path):
            self._count("save_races")
            return None
        try:
            lock_fd = os.open(
                lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            # another writer is materializing this key right now
            self._count("save_races")
            return None
        os.close(lock_fd)
        try:
            with _obs_span("plan_store.save", key=key.stem()):
                arrays = {
                    name: np.ascontiguousarray(getattr(plan, name))
                    for name in ARRAY_FIELDS
                }
                scalars = self._sidecar_scalars(plan, key)
                fd, tmp_path = tempfile.mkstemp(
                    prefix=key.stem() + ".", suffix=".npz.tmp",
                    dir=self.path,
                )
                try:
                    with os.fdopen(fd, "wb") as fh:
                        np.savez(fh, **arrays)
                    os.replace(tmp_path, npz_path)
                except BaseException:
                    try:
                        os.unlink(tmp_path)
                    except OSError:
                        pass
                    raise
                sidecar = dict(scalars)
                sidecar["content_hash"] = _artifact_hash(arrays, scalars)
                sidecar["created_by"] = _machine_tag()
                atomic_write_json(sidecar, sidecar_path)
        finally:
            try:
                os.unlink(lock_path)
            except OSError:
                pass
        self._count("saves")
        if self.max_bytes is not None:
            self.gc()
        return sidecar_path

    def put(self, plan: ExecutionPlan, key: PlanKey) -> str | None:
        """Best-effort :meth:`save` for cache-tier callers: an I/O
        failure is counted, never raised — failing to persist must not
        fail the solve that compiled the plan."""
        try:
            return self.save(plan, key)
        except OSError:
            self._count("save_errors")
            return None

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def _read_sidecar(self, sidecar_path: str) -> dict:
        try:
            with open(sidecar_path, "r", encoding="utf-8") as fh:
                sidecar = json.load(fh)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise PlanArtifactCorruptError(
                f"plan sidecar {sidecar_path!s} is torn or not valid "
                f"JSON: {exc}"
            ) from None
        if not isinstance(sidecar, dict):
            raise PlanArtifactCorruptError(
                f"plan sidecar {sidecar_path!s}: expected a JSON object"
            )
        return sidecar

    def load(
        self,
        key: PlanKey,
        *,
        matrix=None,
        schedule=None,
    ) -> ExecutionPlan:
        """Load, integrity-check and verify the plan stored under
        ``key``.

        Every gate is mandatory and ordered: format version, exact key
        match (fingerprint/scheduler/cores/threshold/dtype), schedule
        identity against a caller-supplied ``schedule``, toolchain
        digest, content hash over arrays *and* sidecar scalars — and
        finally the static verifier
        (:func:`repro.analysis.verify.check_plan`, cross-checked
        against ``matrix``/``schedule`` when supplied).  Any failure
        raises the named error; a plan that cannot prove its integrity
        is never returned.

        The returned plan carries ``provenance="store"`` and the
        caller-supplied ``matrix``/``schedule`` attached (artifacts
        persist only the lowered arrays, never their sources).
        """
        npz_path, sidecar_path, _ = self._paths(key)
        if not os.path.exists(sidecar_path):
            raise PlanArtifactMissingError(
                f"no plan artifact for key {key.stem()!r} in {self.path!r}"
            )
        with _obs_span("plan_store.load", key=key.stem()):
            sidecar = self._read_sidecar(sidecar_path)
            version = sidecar.get("format_version")
            if version != PLAN_STORE_VERSION:
                raise PlanArtifactVersionError(
                    f"plan artifact {sidecar_path!s} has format version "
                    f"{version!r}; this build reads version "
                    f"{PLAN_STORE_VERSION}"
                )
            stored_key = sidecar.get("key")
            if stored_key != key.as_dict():
                raise PlanArtifactStaleError(
                    f"plan artifact {sidecar_path!s} describes key "
                    f"{stored_key!r}, not the requested {key.as_dict()!r}"
                )
            if matrix is not None:
                from repro.tuner.auto import matrix_fingerprint

                fingerprint = matrix_fingerprint(matrix)
                if fingerprint != key.matrix_fingerprint:
                    raise PlanArtifactStaleError(
                        f"plan artifact {sidecar_path!s} was stored for "
                        f"matrix {key.matrix_fingerprint!r}; the "
                        f"supplied matrix fingerprints as "
                        f"{fingerprint!r}"
                    )
            if schedule is not None or sidecar.get(
                "schedule_identity"
            ) == "__serial__":
                expected = schedule_identity(schedule)
                if sidecar.get("schedule_identity") != expected:
                    raise PlanArtifactStaleError(
                        f"plan artifact {sidecar_path!s} was lowered "
                        f"from schedule "
                        f"{sidecar.get('schedule_identity')!r}, not the "
                        f"supplied {expected!r}"
                    )
            toolchain = toolchain_digest()
            if sidecar.get("toolchain") != toolchain:
                raise PlanArtifactStaleError(
                    f"plan artifact {sidecar_path!s} was written by "
                    f"toolchain {sidecar.get('toolchain')!r}; this "
                    f"process is {toolchain!r}"
                )
            try:
                with np.load(npz_path, allow_pickle=False) as payload:
                    arrays = {
                        name: np.ascontiguousarray(payload[name])
                        for name in ARRAY_FIELDS
                    }
            except (OSError, ValueError, KeyError, EOFError,
                    zipfile.BadZipFile) as exc:
                raise PlanArtifactCorruptError(
                    f"plan payload {npz_path!s} is unreadable or "
                    f"incomplete: {exc}"
                ) from None
            scalars = {
                name: sidecar.get(name)
                for name in (
                    "format_version", "key", "direction", "n",
                    "fuse_threshold", "singular_row", "singular_reason",
                    "schedule_identity", "toolchain",
                )
            }
            content_hash = _artifact_hash(arrays, scalars)
            if sidecar.get("content_hash") != content_hash:
                raise PlanArtifactCorruptError(
                    f"plan artifact {npz_path!s} failed its content "
                    f"hash (stored {sidecar.get('content_hash')!r}, "
                    f"recomputed {content_hash!r}) — bytes were "
                    f"flipped, truncated or torn"
                )
            plan = ExecutionPlan(
                matrix=matrix,
                schedule=schedule,
                direction=str(sidecar["direction"]),
                fuse_threshold=int(sidecar["fuse_threshold"]),
                singular_row=int(sidecar["singular_row"]),
                _singular_reason=str(sidecar["singular_reason"]),
                provenance="store",
                **arrays,
            )
            # the hard gate: a deserialized plan passes the full static
            # verifier or it is never served — unconditional, not
            # behind REPRO_VALIDATE_PLANS (solvability is checked by
            # consumers; cost-model plans legally carry singularities)
            from repro.analysis.verify import check_plan

            check_plan(
                plan, matrix=matrix, schedule=schedule,
                require_solvable=False,
            )
        try:
            os.utime(sidecar_path)  # LRU touch
        except OSError:
            pass
        self._count("hits")
        return plan

    def get(
        self,
        key: PlanKey,
        *,
        matrix=None,
        schedule=None,
    ) -> ExecutionPlan | None:
        """Cache-tier lookup: the loaded plan, or ``None``.

        A missing artifact is a counted miss; a rejected artifact
        (named :class:`~repro.errors.PlanArtifactError`, a failed
        :func:`check_plan`, or an I/O error) is a counted reject — the
        caller falls back to compiling either way, and a corrupt
        artifact never crashes the lookup.
        """
        try:
            return self.load(key, matrix=matrix, schedule=schedule)
        except PlanArtifactMissingError:
            self._count("misses")
            return None
        except (PlanArtifactError, PlanVerificationError, OSError) as exc:
            with self._lock:
                self.last_reject = f"{type(exc).__name__}: {exc}"
            self._count("rejects")
            return None

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _artifacts(self) -> list[dict]:
        """All artifacts (by sidecar), with sizes and LRU mtimes."""
        out = []
        for name in sorted(os.listdir(self.path)):
            if not name.endswith(".json") or name == META_FILE:
                continue
            sidecar_path = os.path.join(self.path, name)
            npz_path = sidecar_path[:-5] + ".npz"
            try:
                stat = os.stat(sidecar_path)
                size = stat.st_size + (
                    os.stat(npz_path).st_size
                    if os.path.exists(npz_path) else 0
                )
            except OSError:
                continue
            out.append({
                "stem": name[:-5],
                "sidecar": sidecar_path,
                "npz": npz_path,
                "bytes": size,
                "mtime": stat.st_mtime,
            })
        return out

    def ls(self) -> list[dict]:
        """Sidecar summaries of every artifact (stable stem order)."""
        rows = []
        for entry in self._artifacts():
            try:
                sidecar = self._read_sidecar(entry["sidecar"])
            except PlanArtifactCorruptError:
                sidecar = {}
            rows.append({
                "stem": entry["stem"],
                "bytes": entry["bytes"],
                "key": sidecar.get("key"),
                "n": sidecar.get("n"),
                "direction": sidecar.get("direction"),
                "schedule_identity": sidecar.get("schedule_identity"),
                "toolchain": sidecar.get("toolchain"),
            })
        return rows

    def verify(self) -> dict:
        """Run the full load gate over every artifact.

        Each artifact is loaded through :meth:`load` with the key its
        own sidecar declares (structural verification only — sources
        are not available), so a tampered sidecar, flipped payload
        byte, version bump or toolchain drift is flagged with its
        named error.  Returns per-artifact verdicts plus a summary;
        never raises.
        """
        verdicts = []
        for entry in self._artifacts():
            stem = entry["stem"]
            try:
                sidecar = self._read_sidecar(entry["sidecar"])
                stored = sidecar.get("key")
                if not isinstance(stored, dict):
                    raise PlanArtifactCorruptError(
                        f"plan sidecar {entry['sidecar']!s} carries no "
                        f"key object"
                    )
                key = PlanKey(**stored)
                if key.stem() != stem:
                    raise PlanArtifactStaleError(
                        f"plan sidecar {entry['sidecar']!s} declares "
                        f"key {stored!r}, which stems to "
                        f"{key.stem()!r}, not {stem!r}"
                    )
                self.load(key)
                verdicts.append(
                    {"stem": stem, "ok": True, "error": None,
                     "error_type": None}
                )
            except (PlanArtifactError, PlanVerificationError,
                    TypeError, OSError) as exc:
                verdicts.append({
                    "stem": stem,
                    "ok": False,
                    "error": str(exc),
                    "error_type": type(exc).__name__,
                })
        n_bad = sum(1 for v in verdicts if not v["ok"])
        return {
            "store": self.path,
            "n_artifacts": len(verdicts),
            "n_bad": n_bad,
            "ok": n_bad == 0,
            "artifacts": verdicts,
        }

    def gc(self, max_bytes: int | None = None) -> dict:
        """Evict least-recently-used artifacts beyond the byte budget.

        Loads touch their sidecar's mtime, so eviction order is a
        genuine LRU over *uses*, not creation order.  Also clears
        leftover ``.lock`` files (a crashed writer's claim otherwise
        blocks that key's persistence forever) — do not run ``gc``
        concurrently with active writers.  Returns eviction stats.
        """
        budget = max_bytes if max_bytes is not None else self.max_bytes
        removed = []
        for name in os.listdir(self.path):
            if name.endswith(".lock"):
                try:
                    os.unlink(os.path.join(self.path, name))
                except OSError:
                    pass
        artifacts = self._artifacts()
        total = sum(entry["bytes"] for entry in artifacts)
        before = total
        if budget is not None:
            for entry in sorted(artifacts, key=lambda e: e["mtime"]):
                if total <= budget:
                    break
                for path in (entry["npz"], entry["sidecar"]):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                total -= entry["bytes"]
                removed.append(entry["stem"])
        if removed:
            self._count("evictions", len(removed))
        return {
            "store": self.path,
            "max_bytes": budget,
            "bytes_before": before,
            "bytes_after": total,
            "removed": removed,
        }

    def delete(self, key: PlanKey) -> bool:
        """Remove one artifact; returns whether anything existed."""
        npz_path, sidecar_path, _ = self._paths(key)
        existed = False
        for path in (sidecar_path, npz_path):
            try:
                os.unlink(path)
                existed = True
            except OSError:
                pass
        return existed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._artifacts())

    def counters(self) -> dict:
        """Hit/miss/reject/save counters as a plain dict snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "rejects": self.rejects,
                "saves": self.saves,
                "save_races": self.save_races,
                "save_errors": self.save_errors,
                "evictions": self.evictions,
            }

    def stats(self) -> dict:
        """Store summary (artifact count, bytes, counters)."""
        artifacts = self._artifacts()
        return {
            "store": self.path,
            "version": PLAN_STORE_VERSION,
            "n_artifacts": len(artifacts),
            "total_bytes": sum(entry["bytes"] for entry in artifacts),
            "max_bytes": self.max_bytes,
            "toolchain": toolchain_digest(),
            "counters": self.counters(),
        }

    def __repr__(self) -> str:
        return (
            f"PlanStore(path={self.path!r}, artifacts={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"rejects={self.rejects})"
        )


def _machine_tag() -> str:
    """Provenance tag for sidecars (informational, not hashed)."""
    from repro.store.store import machine_fingerprint

    return machine_fingerprint()
