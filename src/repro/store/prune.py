"""Coverage-aware thinning of observation records.

A bounded training store has to drop something; *what* it drops decides
how the learned prior degrades.  FIFO truncation (what the bounded
profile store did before this layer) forgets whole regions of feature
space as soon as recent traffic stops visiting them — a fleet that tunes
a new family of meshes for a week evicts everything it knew about
Erdős–Rényi structure.  The store prunes by **feature-space coverage**
instead: within each ``(scheduler, reordered, mode)`` variant the unique
feature vectors are ordered by farthest-point sampling (greedily keep
the vector farthest from everything kept so far), and records are
retained round-robin along that ordering, newest first per vector.  The
kept set spans the observed feature space as evenly as the budget
allows, however lopsided the traffic that produced it.

Determinism: ties in the farthest-point argmax break toward the lowest
index, the seed point is the vector farthest from the group centroid,
and the surviving records keep their original store order — pruning the
same records to the same budget always yields the same result.
"""

from __future__ import annotations

import numpy as np

from repro.tuner.features import MatrixFeatures
from repro.tuner.learn import feature_vector

__all__ = ["coverage_prune", "farthest_point_order"]


def farthest_point_order(vectors: np.ndarray, k: int | None = None) -> list[int]:
    """Indices of ``vectors`` in farthest-point-sampling order.

    The first index is the vector farthest from the centroid; each
    subsequent index maximizes the distance to the already-selected
    set.  ``k`` bounds the length of the returned ordering (default:
    all of them).  Cost is one vectorized distance pass per selected
    point — O(k · n) distances, never O(n²) memory.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.store import farthest_point_order
    >>> pts = np.array([[0.0], [0.1], [10.0], [10.1]])
    >>> order = farthest_point_order(pts, k=2)
    >>> sorted(pts[order].ravel().tolist())   # one point per cluster
    [0.0, 10.1]
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    n = len(vectors)
    if n == 0:
        return []
    k = n if k is None else max(min(int(k), n), 1)
    centroid = vectors.mean(axis=0)
    first = int(np.linalg.norm(vectors - centroid, axis=1).argmax())
    order = [first]
    min_dist = np.linalg.norm(vectors - vectors[first], axis=1)
    for _ in range(1, k):
        nxt = int(min_dist.argmax())
        order.append(nxt)
        np.minimum(
            min_dist,
            np.linalg.norm(vectors - vectors[nxt], axis=1),
            out=min_dist,
        )
    return order


def _variant_key(record: dict) -> tuple[str, bool, str]:
    return (
        str(record.get("scheduler", "")),
        bool(record.get("reordered", False)),
        str(record.get("mode", "")),
    )


def _record_vector(record: dict) -> np.ndarray | None:
    try:
        return feature_vector(MatrixFeatures.from_dict(record["features"]))
    except (KeyError, TypeError, ValueError):
        return None


def _allocate_quotas(sizes: list[int], budget: int) -> list[int]:
    """Per-group budgets proportional to group size (largest-remainder
    rounding), each group getting at least one slot while slots last."""
    total = sum(sizes)
    if total <= budget:
        return list(sizes)
    shares = [budget * size / total for size in sizes]
    quotas = [int(s) for s in shares]
    # groups ordered by descending fractional remainder (ties: larger
    # group, then lower index) receive the leftover slots
    leftovers = sorted(
        range(len(sizes)),
        key=lambda i: (-(shares[i] - quotas[i]), -sizes[i], i),
    )
    remaining = budget - sum(quotas)
    for i in leftovers:
        if remaining <= 0:
            break
        quotas[i] += 1
        remaining -= 1
    # every non-empty group keeps at least one record while the budget
    # allows, funded by the largest quotas
    donors = sorted(range(len(sizes)), key=lambda i: -quotas[i])
    for i in range(len(sizes)):
        if sizes[i] > 0 and quotas[i] == 0:
            for j in donors:
                if quotas[j] > 1:
                    quotas[j] -= 1
                    quotas[i] = 1
                    break
    return [min(q, s) for q, s in zip(quotas, sizes, strict=True)]


def coverage_prune(records: list[dict], keep: int) -> list[dict]:
    """The ``<= keep`` records retained by coverage-aware thinning.

    Records that fail to parse (no feature payload) are dropped first;
    the budget is split across ``(scheduler, reordered, mode)`` variants
    proportionally to their size (each surviving variant keeps at least
    one record), and within a variant records are kept round-robin over
    the farthest-point ordering of its unique feature vectors, newest
    record first per vector.  The result preserves the original record
    order.
    """
    keep = max(int(keep), 0)
    if len(records) <= keep:
        return list(records)

    groups: dict[tuple[str, bool, str], list[tuple[int, bytes]]] = {}
    vectors_by_key: dict[bytes, np.ndarray] = {}
    for index, record in enumerate(records):
        vector = _record_vector(record)
        if vector is None:
            continue
        token = vector.tobytes()
        vectors_by_key.setdefault(token, vector)
        groups.setdefault(_variant_key(record), []).append((index, token))

    variant_order = sorted(groups)
    quotas = _allocate_quotas(
        [len(groups[v]) for v in variant_order], keep
    )

    kept_indices: list[int] = []
    for variant, quota in zip(variant_order, quotas, strict=True):
        if quota <= 0:
            continue
        members = groups[variant]
        # unique vectors in first-seen order; per vector, record indices
        # newest-first so the freshest measurement survives longest
        token_order: list[bytes] = []
        by_token: dict[bytes, list[int]] = {}
        for index, token in members:
            if token not in by_token:
                by_token[token] = []
                token_order.append(token)
            by_token[token].append(index)
        matrix = np.stack([vectors_by_key[t] for t in token_order])
        fps = farthest_point_order(matrix)
        ranked = [by_token[token_order[i]][::-1] for i in fps]
        taken = 0
        depth = 0
        while taken < quota:
            progressed = False
            for rows in ranked:
                if depth < len(rows):
                    kept_indices.append(rows[depth])
                    taken += 1
                    progressed = True
                    if taken >= quota:
                        break
            if not progressed:
                break
            depth += 1

    kept_indices.sort()
    return [records[i] for i in kept_indices]
