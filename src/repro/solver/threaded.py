"""Real thread-based SpTRSV executor with barrier synchronization.

Mirrors the paper's OpenMP kernel: ``n_cores`` worker threads, each solving
its rows of every superstep, separated by :class:`threading.Barrier`.  Under
CPython's GIL this yields no wall-clock speed-up, but it executes the exact
synchronization structure of the schedule — including the property that
cross-core dependencies are only read after a barrier — so it serves as a
functional/structural test of schedules on a real concurrency substrate.

The per-cell work unit consumes a precompiled
:class:`~repro.exec.plan.ExecutionPlan` (contiguous gather arrays,
compile-time-validated diagonals) via
:func:`repro.exec.backends.solve_rows_ref` instead of re-walking CSR rows;
the thread/barrier scaffolding is the only part that lives here.

Worker exceptions are captured and re-raised in the caller; the barrier is
broken on error so no thread deadlocks.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import MatrixFormatError
from repro.exec import ExecutionPlan, compile_plan
from repro.exec.backends import solve_rows_ref
from repro.matrix.csr import CSRMatrix
from repro.scheduler.schedule import Schedule

__all__ = ["threaded_sptrsv"]


def threaded_sptrsv(
    lower: CSRMatrix,
    b: np.ndarray,
    schedule: Schedule,
    *,
    plan: ExecutionPlan | None = None,
) -> np.ndarray:
    """Solve ``L x = b`` with one thread per core of the schedule.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import DAG, GrowLocalScheduler, threaded_sptrsv
    >>> from repro.matrix.generators import narrow_band_lower
    >>> L = narrow_band_lower(100, 0.15, 6.0, seed=0)
    >>> sched = GrowLocalScheduler().schedule(
    ...     DAG.from_lower_triangular(L), 2)
    >>> x = threaded_sptrsv(L, np.ones(100), sched)
    >>> bool(np.allclose(L.matvec(x), np.ones(100)))
    True
    """
    lower.require_lower_triangular()
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (lower.n,):
        raise MatrixFormatError("right-hand side has wrong length")
    if schedule.n != lower.n:
        raise MatrixFormatError("schedule size does not match the matrix")
    if plan is None:
        plan = compile_plan(lower, schedule)
    else:
        plan.require_compatible(lower.n, "forward")
    plan.require_solvable()

    n_cores = schedule.n_cores
    lists = schedule.execution_lists()  # [superstep][core] -> rows
    x = np.zeros(lower.n)
    barrier = threading.Barrier(n_cores)
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    def worker(core: int) -> None:
        try:
            for step_cells in lists:
                rows = step_cells[core]
                if rows.size:
                    solve_rows_ref(plan, rows, b, x)
                barrier.wait()
        except BaseException as exc:  # noqa: BLE001 - propagate to caller
            with errors_lock:
                errors.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(p,), daemon=True)
        for p in range(n_cores)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        first = errors[0]
        if isinstance(first, threading.BrokenBarrierError):
            # secondary failure; surface a primary error if present
            primary = [e for e in errors
                       if not isinstance(e, threading.BrokenBarrierError)]
            if primary:
                raise primary[0]
        raise first
    return x
