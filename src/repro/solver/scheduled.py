"""Schedule-driven SpTRSV execution (deterministic emulation).

Executes a schedule superstep by superstep: within a superstep each core's
rows are solved in vertex-id order (a topological order of the sub-DAG, per
Section 5); the "barrier" between supersteps is the sequential boundary.
Running the cores of a superstep one after the other on a single OS thread
produces bit-identical results to a true parallel execution because the
schedule guarantees no intra-superstep cross-core dependencies — this is
exactly what :meth:`Schedule.validate` checks, and executing through this
path is an end-to-end test of that guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError
from repro.matrix.csr import CSRMatrix
from repro.scheduler.schedule import Schedule
from repro.solver.sptrsv import solve_rows

__all__ = ["scheduled_sptrsv"]


def scheduled_sptrsv(
    lower: CSRMatrix,
    b: np.ndarray,
    schedule: Schedule,
    *,
    verify_dependencies: bool = False,
) -> np.ndarray:
    """Solve ``L x = b`` following ``schedule``.

    Parameters
    ----------
    verify_dependencies:
        When true, assert before each row that all of its dependencies were
        computed in an earlier superstep or earlier on the same core —
        catching invalid schedules at the exact failing row (used by the
        test-suite's failure-injection tests).
    """
    lower.require_lower_triangular()
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (lower.n,):
        raise MatrixFormatError("right-hand side has wrong length")
    if schedule.n != lower.n:
        raise MatrixFormatError("schedule size does not match the matrix")

    x = np.zeros(lower.n)
    computed = np.zeros(lower.n, dtype=bool) if verify_dependencies else None
    lists = schedule.execution_lists()
    for step, step_cells in enumerate(lists):
        for core, rows in enumerate(step_cells):
            if rows.size == 0:
                continue
            if computed is not None:
                _verify_cell(lower, schedule, rows, step, core, computed)
            solve_rows(lower, b, x, rows)
    return x


def _verify_cell(
    lower: CSRMatrix,
    schedule: Schedule,
    rows: np.ndarray,
    step: int,
    core: int,
    computed: np.ndarray,
) -> None:
    """Check that each dependency of ``rows`` was produced in an earlier
    superstep, or earlier on the *same* core within this superstep (a
    cross-core same-superstep dependency would race in a real parallel
    execution even if this sequential emulation happens to order it)."""
    from repro.errors import InvalidScheduleError

    for i in rows:
        i = int(i)
        cols = lower.indices[lower.indptr[i]:lower.indptr[i + 1]]
        for j in cols[cols < i]:
            j = int(j)
            earlier_step = schedule.supersteps[j] < step
            same_cell_done = (
                schedule.supersteps[j] == step
                and schedule.cores[j] == core
                and computed[j]
            )
            if not (earlier_step or same_cell_done):
                raise InvalidScheduleError(
                    f"row {i} (core {core}, superstep {step}) would race "
                    f"with dependency {j} (core {int(schedule.cores[j])}, "
                    f"superstep {int(schedule.supersteps[j])})"
                )
        computed[i] = True
