"""Schedule-driven SpTRSV execution (deterministic emulation).

Executes a schedule through the :mod:`repro.exec` subsystem: the
``(matrix, schedule)`` pair is lowered once into an
:class:`~repro.exec.plan.ExecutionPlan` whose batches are the
dependency layers of each superstep, and a backend kernel runs one
vectorized gather/scatter per batch.  For a valid schedule
(Definition 2.1) intra-superstep dependencies never cross cores, so the
batched execution is observationally identical to running each core's
rows in vertex-id order between barriers — the semantics of the seed's
per-row emulator.

With ``verify_dependencies=True`` the seed's per-row reference path is
used instead: it asserts before each row that all dependencies were
computed in an earlier superstep or earlier on the same core, catching
invalid schedules at the exact failing row (the test-suite's
failure-injection hook).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError
from repro.exec import ExecutionPlan, compile_plan, get_backend
from repro.matrix.csr import CSRMatrix
from repro.scheduler.schedule import Schedule
from repro.solver.sptrsv import solve_rows

__all__ = ["scheduled_sptrsv"]


def scheduled_sptrsv(
    lower: CSRMatrix,
    b: np.ndarray,
    schedule: Schedule,
    *,
    verify_dependencies: bool = False,
    plan: ExecutionPlan | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Solve ``L x = b`` following ``schedule``.

    Parameters
    ----------
    verify_dependencies:
        When true, run the per-row reference path and assert before each
        row that all of its dependencies were computed in an earlier
        superstep or earlier on the same core — catching invalid
        schedules at the exact failing row (used by the test-suite's
        failure-injection tests).
    plan:
        Precompiled plan for ``(lower, schedule)``; compiled on the fly
        when omitted.  Ignored on the verification path.
    backend:
        Execution backend name (default auto-selection).

    Examples
    --------
    >>> import numpy as np
    >>> from repro import DAG, GrowLocalScheduler, scheduled_sptrsv
    >>> from repro.matrix.generators import narrow_band_lower
    >>> L = narrow_band_lower(100, 0.15, 6.0, seed=0)
    >>> sched = GrowLocalScheduler().schedule(
    ...     DAG.from_lower_triangular(L), 4)
    >>> x = scheduled_sptrsv(L, np.ones(100), sched)
    >>> bool(np.allclose(L.matvec(x), np.ones(100)))
    True
    """
    lower.require_lower_triangular()
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (lower.n,):
        raise MatrixFormatError("right-hand side has wrong length")
    if schedule.n != lower.n:
        raise MatrixFormatError("schedule size does not match the matrix")

    if verify_dependencies:
        x = np.zeros(lower.n)
        computed = np.zeros(lower.n, dtype=bool)
        lists = schedule.execution_lists()
        for step, step_cells in enumerate(lists):
            for core, rows in enumerate(step_cells):
                if rows.size == 0:
                    continue
                _verify_cell(lower, schedule, rows, step, core, computed)
                solve_rows(lower, b, x, rows)
        return x

    if plan is None:
        plan = compile_plan(lower, schedule)
    else:
        plan.require_compatible(lower.n, "forward")
    return get_backend(backend).solve(plan, b)


def _verify_cell(
    lower: CSRMatrix,
    schedule: Schedule,
    rows: np.ndarray,
    step: int,
    core: int,
    computed: np.ndarray,
) -> None:
    """Check that each dependency of ``rows`` was produced in an earlier
    superstep, or earlier on the *same* core within this superstep (a
    cross-core same-superstep dependency would race in a real parallel
    execution even if this sequential emulation happens to order it)."""
    from repro.errors import InvalidScheduleError

    for i in rows:
        i = int(i)
        cols = lower.indices[lower.indptr[i]:lower.indptr[i + 1]]
        for j in cols[cols < i]:
            j = int(j)
            earlier_step = schedule.supersteps[j] < step
            same_cell_done = (
                schedule.supersteps[j] == step
                and schedule.cores[j] == core
                and computed[j]
            )
            if not (earlier_step or same_cell_done):
                raise InvalidScheduleError(
                    f"row {i} (core {core}, superstep {step}) would race "
                    f"with dependency {j} (core {int(schedule.cores[j])}, "
                    f"superstep {int(schedule.supersteps[j])})"
                )
        computed[i] = True
