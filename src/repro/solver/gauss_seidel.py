"""Gauß–Seidel iteration built on SpTRSV.

Gauß–Seidel is one of the paper's motivating applications (Sections 1 and
6.2.2): each sweep solves the lower-triangular part of ``A`` against the
current residual, i.e. repeated SpTRSV with a fixed sparsity pattern —
precisely the reuse scenario that amortizes a good schedule.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.exec import compile_plan, get_backend
from repro.matrix.csr import CSRMatrix
from repro.scheduler.schedule import Schedule

__all__ = ["gauss_seidel"]


def gauss_seidel(
    matrix: CSRMatrix,
    b: np.ndarray,
    *,
    sweeps: int = 10,
    x0: np.ndarray | None = None,
    schedule: Schedule | None = None,
    backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run forward Gauß–Seidel sweeps ``x <- x + L^{-1} (b - A x)``.

    ``L`` is the lower triangle of ``A`` including the diagonal; it is
    lowered into one :class:`~repro.exec.plan.ExecutionPlan` before the
    first sweep (following ``schedule`` when given, serial level-set
    otherwise), and every sweep reuses that plan — the fixed-sparsity
    reuse scenario that amortizes a good schedule.

    Returns
    -------
    (x, residual_norms):
        The iterate after ``sweeps`` sweeps and the residual 2-norm after
        each sweep.
    """
    if sweeps < 1:
        raise ConfigurationError("sweeps must be >= 1")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (matrix.n,):
        raise ConfigurationError("right-hand side has wrong length")
    lower = matrix.lower_triangle()
    plan = compile_plan(lower, schedule)
    kernel = get_backend(backend)
    x = (
        np.zeros(matrix.n)
        if x0 is None
        else np.asarray(x0, dtype=np.float64).copy()
    )
    norms = np.empty(sweeps)
    for s in range(sweeps):
        r = b - matrix.matvec(x)
        x += kernel.solve(plan, r)
        norms[s] = float(np.linalg.norm(b - matrix.matvec(x)))
    return x, norms
