"""Gauß–Seidel iteration built on SpTRSV.

Gauß–Seidel is one of the paper's motivating applications (Sections 1 and
6.2.2): each sweep solves the lower-triangular part of ``A`` against the
current residual, i.e. repeated SpTRSV with a fixed sparsity pattern —
precisely the reuse scenario that amortizes a good schedule.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.matrix.csr import CSRMatrix
from repro.scheduler.schedule import Schedule
from repro.solver.scheduled import scheduled_sptrsv
from repro.solver.sptrsv import forward_substitution

__all__ = ["gauss_seidel"]


def gauss_seidel(
    matrix: CSRMatrix,
    b: np.ndarray,
    *,
    sweeps: int = 10,
    x0: np.ndarray | None = None,
    schedule: Schedule | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run forward Gauß–Seidel sweeps ``x <- x + L^{-1} (b - A x)``.

    ``L`` is the lower triangle of ``A`` including the diagonal; when a
    ``schedule`` is given the triangular solve follows it (the parallel
    path), otherwise it runs serially.

    Returns
    -------
    (x, residual_norms):
        The iterate after ``sweeps`` sweeps and the residual 2-norm after
        each sweep.
    """
    if sweeps < 1:
        raise ConfigurationError("sweeps must be >= 1")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (matrix.n,):
        raise ConfigurationError("right-hand side has wrong length")
    lower = matrix.lower_triangle()
    x = (
        np.zeros(matrix.n)
        if x0 is None
        else np.asarray(x0, dtype=np.float64).copy()
    )
    norms = np.empty(sweeps)
    for s in range(sweeps):
        r = b - matrix.matvec(x)
        if schedule is not None:
            dx = scheduled_sptrsv(lower, r, schedule)
        else:
            dx = forward_substitution(lower, r)
        x += dx
        norms[s] = float(np.linalg.norm(b - matrix.matvec(x)))
    return x, norms
