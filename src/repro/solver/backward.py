"""Scheduled backward substitution and multi-RHS triangular solve (SpTRSM).

The paper's title problem includes both sweep directions and the SpTRSM
variant (its keywords list "SpTrSV, SpTrSM").  The backward sweep of an
upper-triangular ``U`` has the *reversed* dependence DAG of ``U^T``'s
forward sweep; :func:`backward_dag` builds it so any scheduler in the
library can schedule backward substitution unchanged.

Execution goes through :mod:`repro.exec`: plans are compiled with
``direction="backward"`` (descending-id tie-break inside each dependency
batch, matching the seed executor), and SpTRSM solves all ``k`` right-hand
sides through one plan via the backends' block kernel — the cheapest
possible form of schedule *and plan* reuse (Table 7.6's amortization with
reuse factor ``k`` per solve call).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError
from repro.exec import ExecutionPlan, compile_plan, get_backend
from repro.graph.dag import DAG
from repro.matrix.csr import CSRMatrix
from repro.scheduler.schedule import Schedule

__all__ = [
    "backward_dag",
    "scheduled_backward_sptrsv",
    "forward_sptrsm",
    "scheduled_sptrsm",
]


def backward_dag(upper: CSRMatrix) -> DAG:
    """Dependence DAG of backward substitution on upper-triangular ``U``.

    Row ``i`` of the backward sweep depends on row ``j`` for every stored
    strict-upper entry ``U[i, j]`` (``j > i``): edge ``(j, i)``.  Vertex
    weights are the row non-zero counts, as in the forward case.
    """
    if not upper.is_upper_triangular():
        raise MatrixFormatError("backward_dag expects an upper-triangular "
                                "matrix")
    rows = np.repeat(np.arange(upper.n, dtype=np.int64), upper.row_nnz())
    strict = upper.indices > rows
    src = upper.indices[strict]
    dst = rows[strict]
    weights = np.maximum(upper.row_nnz(), 1)
    return DAG(upper.n, src, dst, weights, check=False)


def scheduled_backward_sptrsv(
    upper: CSRMatrix,
    b: np.ndarray,
    schedule: Schedule,
    *,
    plan: ExecutionPlan | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Solve ``U x = b`` following a schedule of :func:`backward_dag`.

    Within each dependency batch rows carry *descending* ids — the
    topological tie-break of the backward DAG.
    """
    if not upper.is_upper_triangular():
        raise MatrixFormatError("matrix is not upper triangular")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (upper.n,):
        raise MatrixFormatError("right-hand side has wrong length")
    if schedule.n != upper.n:
        raise MatrixFormatError("schedule size does not match the matrix")
    if plan is None:
        plan = compile_plan(upper, schedule, direction="backward")
    else:
        plan.require_compatible(upper.n, "backward")
    return get_backend(backend).solve(plan, b)


def _check_block(n: int, b_block: np.ndarray) -> np.ndarray:
    b_block = np.asarray(b_block, dtype=np.float64)
    if b_block.ndim != 2 or b_block.shape[0] != n:
        raise MatrixFormatError("B must be (n, k)")
    return b_block


def forward_sptrsm(
    lower: CSRMatrix,
    b_block: np.ndarray,
    *,
    plan: ExecutionPlan | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Serial SpTRSM: solve ``L X = B`` for an ``n x k`` block ``B``.

    One plan drives all ``k`` right-hand sides; the batch kernels
    vectorize across columns as well as across the rows of each
    dependency layer.
    """
    lower.require_lower_triangular()
    b_block = _check_block(lower.n, b_block)
    if plan is None:
        plan = compile_plan(lower)
    else:
        plan.require_compatible(lower.n, "forward")
    return get_backend(backend).solve_block(plan, b_block)


def scheduled_sptrsm(
    lower: CSRMatrix,
    b_block: np.ndarray,
    schedule: Schedule,
    *,
    plan: ExecutionPlan | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Schedule-driven SpTRSM: one schedule (and plan) drives all ``k``
    columns."""
    lower.require_lower_triangular()
    b_block = _check_block(lower.n, b_block)
    if schedule.n != lower.n:
        raise MatrixFormatError("schedule size does not match the matrix")
    if plan is None:
        plan = compile_plan(lower, schedule)
    else:
        plan.require_compatible(lower.n, "forward")
    return get_backend(backend).solve_block(plan, b_block)
