"""Scheduled backward substitution and multi-RHS triangular solve (SpTRSM).

The paper's title problem includes both sweep directions and the SpTRSM
variant (its keywords list "SpTrSV, SpTrSM").  The backward sweep of an
upper-triangular ``U`` has the *reversed* dependence DAG of ``U^T``'s
forward sweep; :func:`backward_dag` builds it so any scheduler in the
library can schedule backward substitution unchanged, and
:func:`scheduled_backward_sptrsv` executes such a schedule.

SpTRSM (``L X = B`` with an ``n x k`` right-hand-side block) reuses one
schedule across all columns — the cheapest possible form of schedule
reuse (Table 7.6's amortization with reuse factor ``k`` per solve call).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError, SingularMatrixError
from repro.graph.dag import DAG
from repro.matrix.csr import CSRMatrix
from repro.scheduler.schedule import Schedule

__all__ = [
    "backward_dag",
    "scheduled_backward_sptrsv",
    "forward_sptrsm",
    "scheduled_sptrsm",
]


def backward_dag(upper: CSRMatrix) -> DAG:
    """Dependence DAG of backward substitution on upper-triangular ``U``.

    Row ``i`` of the backward sweep depends on row ``j`` for every stored
    strict-upper entry ``U[i, j]`` (``j > i``): edge ``(j, i)``.  Vertex
    weights are the row non-zero counts, as in the forward case.
    """
    if not upper.is_upper_triangular():
        raise MatrixFormatError("backward_dag expects an upper-triangular "
                                "matrix")
    rows = np.repeat(np.arange(upper.n, dtype=np.int64), upper.row_nnz())
    strict = upper.indices > rows
    src = upper.indices[strict]
    dst = rows[strict]
    weights = np.maximum(upper.row_nnz(), 1)
    return DAG(upper.n, src, dst, weights, check=False)


def _solve_rows_backward(
    upper: CSRMatrix, b: np.ndarray, x: np.ndarray, rows: np.ndarray
) -> None:
    """Solve the given rows of ``U x = b`` (dependencies already in x)."""
    indptr, indices, data = upper.indptr, upper.indices, upper.data
    for i in rows:
        i = int(i)
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        if hi == lo or cols[0] != i:
            raise SingularMatrixError(f"row {i} has no stored diagonal")
        if vals[0] == 0.0:
            raise SingularMatrixError(f"zero diagonal at row {i}")
        x[i] = (b[i] - np.dot(vals[1:], x[cols[1:]])) / vals[0]


def scheduled_backward_sptrsv(
    upper: CSRMatrix,
    b: np.ndarray,
    schedule: Schedule,
) -> np.ndarray:
    """Solve ``U x = b`` following a schedule of :func:`backward_dag`.

    Within each (superstep, core) cell rows run in *descending* id order —
    the topological order of the backward DAG.
    """
    if not upper.is_upper_triangular():
        raise MatrixFormatError("matrix is not upper triangular")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (upper.n,):
        raise MatrixFormatError("right-hand side has wrong length")
    if schedule.n != upper.n:
        raise MatrixFormatError("schedule size does not match the matrix")

    x = np.zeros(upper.n)
    # descending ids are topological for the backward DAG
    order_hint = -np.arange(upper.n, dtype=np.int64)
    for step_cells in schedule.execution_lists(order_hint=order_hint):
        for rows in step_cells:
            if rows.size:
                _solve_rows_backward(upper, b, x, rows)
    return x


def forward_sptrsm(lower: CSRMatrix, b_block: np.ndarray) -> np.ndarray:
    """Serial SpTRSM: solve ``L X = B`` for an ``n x k`` block ``B``.

    The inner dot products are vectorized across all ``k`` right-hand
    sides simultaneously (row-block substitution).
    """
    lower.require_lower_triangular()
    b_block = np.asarray(b_block, dtype=np.float64)
    if b_block.ndim != 2 or b_block.shape[0] != lower.n:
        raise MatrixFormatError("B must be (n, k)")
    x = np.zeros_like(b_block)
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    for i in range(lower.n):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        if hi == lo or cols[-1] != i:
            raise SingularMatrixError(f"row {i} has no stored diagonal")
        if vals[-1] == 0.0:
            raise SingularMatrixError(f"zero diagonal at row {i}")
        acc = b_block[i] - vals[:-1] @ x[cols[:-1]]
        x[i] = acc / vals[-1]
    return x


def scheduled_sptrsm(
    lower: CSRMatrix,
    b_block: np.ndarray,
    schedule: Schedule,
) -> np.ndarray:
    """Schedule-driven SpTRSM: one schedule drives all ``k`` columns."""
    lower.require_lower_triangular()
    b_block = np.asarray(b_block, dtype=np.float64)
    if b_block.ndim != 2 or b_block.shape[0] != lower.n:
        raise MatrixFormatError("B must be (n, k)")
    if schedule.n != lower.n:
        raise MatrixFormatError("schedule size does not match the matrix")
    x = np.zeros_like(b_block)
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    for step_cells in schedule.execution_lists():
        for rows in step_cells:
            for i in rows:
                i = int(i)
                lo, hi = indptr[i], indptr[i + 1]
                cols = indices[lo:hi]
                vals = data[lo:hi]
                if hi == lo or cols[-1] != i or vals[-1] == 0.0:
                    raise SingularMatrixError(
                        f"missing/zero diagonal at row {i}"
                    )
                x[i] = (b_block[i] - vals[:-1] @ x[cols[:-1]]) / vals[-1]
    return x
