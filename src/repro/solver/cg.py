"""Preconditioned conjugate gradient built on SpTRSV.

The paper motivates SpTRSV through iterative solvers that apply the same
triangular factors repeatedly (Section 1, Section 6.2.2: "a zero-fill-in
incomplete Cholesky preconditioned conjugate gradient method").  This module
closes that loop: :func:`ichol_preconditioner` wraps an IC(0) factor into a
preconditioner whose application is two scheduled SpTRSVs, and
:func:`conjugate_gradient` is a standard PCG that counts exactly how many
times the triangular solves are reused — the quantity the amortization
threshold (Table 7.6) is measured against.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.exec import compile_plan, get_backend
from repro.matrix.csr import CSRMatrix
from repro.matrix.ichol import ichol0
from repro.scheduler.schedule import Schedule

__all__ = ["CGResult", "conjugate_gradient", "ichol_preconditioner"]


class CGResult:
    """Outcome of a conjugate-gradient solve.

    Attributes
    ----------
    x:
        The (approximate) solution.
    iterations:
        Iterations performed (== preconditioner applications).
    residual_norm:
        Final ``||b - A x||_2``.
    converged:
        Whether the tolerance was reached.
    sptrsv_count:
        Number of triangular solves executed (two per preconditioner
        application) — the reuse count that amortizes scheduling time.
    """

    __slots__ = ("x", "iterations", "residual_norm", "converged",
                 "sptrsv_count")

    def __init__(self, x, iterations, residual_norm, converged,
                 sptrsv_count) -> None:
        self.x = x
        self.iterations = int(iterations)
        self.residual_norm = float(residual_norm)
        self.converged = bool(converged)
        self.sptrsv_count = int(sptrsv_count)


def ichol_preconditioner(
    matrix: CSRMatrix,
    *,
    schedule: Schedule | None = None,
    backend: str | None = None,
) -> tuple[Callable[[np.ndarray], np.ndarray], CSRMatrix]:
    """Build ``M^{-1} = (L L^T)^{-1}`` from an IC(0) factor of ``matrix``.

    Both sweeps are lowered to execution plans *once*, here; every
    preconditioner application then reuses the compiled plans — the exact
    amortization scenario the paper's Table 7.6 measures.

    Parameters
    ----------
    schedule:
        Optional parallel schedule for the *forward* solve with ``L``
        (computed by any scheduler on ``DAG.from_lower_triangular(L)``).
        When omitted, the forward sweep uses a serial (level-set) plan.
    backend:
        Execution backend name (default auto-selection).

    Returns
    -------
    (apply, L):
        ``apply(r)`` returns ``(L L^T)^{-1} r``; ``L`` is the IC(0) factor
        so callers can build schedules or statistics for it.
    """
    factor = ichol0(matrix)
    upper = factor.transpose()
    forward_plan = compile_plan(factor, schedule)
    backward_plan = compile_plan(upper, direction="backward")
    kernel = get_backend(backend)

    def apply(r: np.ndarray) -> np.ndarray:
        y = kernel.solve(forward_plan, np.asarray(r, dtype=np.float64))
        return kernel.solve(backward_plan, y)

    return apply, factor


def conjugate_gradient(
    matrix: CSRMatrix,
    b: np.ndarray,
    *,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
    tol: float = 1e-10,
    max_iterations: int = 1000,
) -> CGResult:
    """Preconditioned conjugate gradient for SPD ``matrix``.

    Standard PCG with the relative residual stopping rule
    ``||r|| <= tol * ||b||``.
    """
    if max_iterations < 1:
        raise ConfigurationError("max_iterations must be >= 1")
    b = np.asarray(b, dtype=np.float64)
    n = matrix.n
    if b.shape != (n,):
        raise ConfigurationError("right-hand side has wrong length")

    x = np.zeros(n)
    r = b.copy()
    b_norm = float(np.linalg.norm(b)) or 1.0
    sptrsv_count = 0

    def precond(v: np.ndarray) -> np.ndarray:
        nonlocal sptrsv_count
        if preconditioner is None:
            return v
        sptrsv_count += 2  # forward + backward sweep
        return preconditioner(v)

    z = precond(r)
    p = z.copy()
    rz = float(r @ z)
    iterations = 0
    converged = float(np.linalg.norm(r)) <= tol * b_norm
    while not converged and iterations < max_iterations:
        ap = matrix.matvec(p)
        denom = float(p @ ap)
        if denom <= 0.0:
            break  # matrix is not SPD along p; bail out gracefully
        alpha = rz / denom
        x += alpha * p
        r -= alpha * ap
        iterations += 1
        if float(np.linalg.norm(r)) <= tol * b_norm:
            converged = True
            break
        z = precond(r)
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new

    return CGResult(
        x, iterations, float(np.linalg.norm(b - matrix.matvec(x))),
        converged, sptrsv_count,
    )
