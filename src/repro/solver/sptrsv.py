"""Serial sparse triangular solve kernels (forward/backward substitution).

The paper's kernel (Section 6.1): iterate rows of the CSR matrix in order,
computing Eq. 2.1:

    x_i = (b_i - sum_{j < i} A_ij x_j) / A_ii.

The inner dot product is vectorized with NumPy slices; the outer loop is
inherently sequential (each row may depend on all previous ones).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError, SingularMatrixError
from repro.matrix.csr import CSRMatrix

__all__ = ["forward_substitution", "backward_substitution", "solve_rows"]


def solve_rows(
    lower: CSRMatrix,
    b: np.ndarray,
    x: np.ndarray,
    rows: np.ndarray,
) -> None:
    """Solve the given ``rows`` of ``L x = b`` in the given order, writing
    into ``x`` (which must already contain valid values for all
    dependencies).  This is the per-core unit of work of every executor.
    """
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    for i in rows:
        i = int(i)
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        if hi == lo or cols[-1] != i:
            raise SingularMatrixError(
                f"row {i} has no stored diagonal entry"
            )
        diag = vals[-1]
        if diag == 0.0:
            raise SingularMatrixError(f"zero diagonal at row {i}")
        acc = b[i] - np.dot(vals[:-1], x[cols[:-1]])
        x[i] = acc / diag


def forward_substitution(lower: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``L x = b`` for lower-triangular ``L`` (Eq. 2.1)."""
    lower.require_lower_triangular()
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (lower.n,):
        raise MatrixFormatError("right-hand side has wrong length")
    x = np.zeros(lower.n)
    solve_rows(lower, b, x, np.arange(lower.n, dtype=np.int64))
    return x


def backward_substitution(upper: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U`` (reverse sweep)."""
    if not upper.is_upper_triangular():
        raise MatrixFormatError("matrix is not upper triangular")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (upper.n,):
        raise MatrixFormatError("right-hand side has wrong length")
    x = np.zeros(upper.n)
    indptr, indices, data = upper.indptr, upper.indices, upper.data
    for i in range(upper.n - 1, -1, -1):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        if hi == lo or cols[0] != i:
            raise SingularMatrixError(f"row {i} has no stored diagonal entry")
        diag = vals[0]
        if diag == 0.0:
            raise SingularMatrixError(f"zero diagonal at row {i}")
        x[i] = (b[i] - np.dot(vals[1:], x[cols[1:]])) / diag
    return x
