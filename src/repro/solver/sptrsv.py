"""Sparse triangular solve kernels (forward/backward substitution).

The paper's kernel (Section 6.1) computes Eq. 2.1:

    x_i = (b_i - sum_{j < i} A_ij x_j) / A_ii.

Both sweeps are executed through the :mod:`repro.exec` subsystem: the
matrix is lowered once into an :class:`~repro.exec.plan.ExecutionPlan`
(dependency-layer batches, contiguous gather arrays, compile-time diagonal
validation) and a pluggable backend kernel runs it — one vectorized batch
per dependency layer instead of one interpreted iteration per row.  Pass a
precompiled ``plan`` to amortize the lowering across repeated solves with
the same matrix (CG, Gauss-Seidel, SpTRSM).

:func:`solve_rows` remains as the seed's reference per-row kernel; the
schedule-verification path and the thread-based executor's cell kernels
are specified against it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixFormatError, SingularMatrixError
from repro.exec import ExecutionPlan, compile_plan, get_backend
from repro.matrix.csr import CSRMatrix

__all__ = ["forward_substitution", "backward_substitution", "solve_rows"]


def solve_rows(
    lower: CSRMatrix,
    b: np.ndarray,
    x: np.ndarray,
    rows: np.ndarray,
) -> None:
    """Solve the given ``rows`` of ``L x = b`` in the given order, writing
    into ``x`` (which must already contain valid values for all
    dependencies).

    This is the reference per-row kernel the vectorized plan-based
    execution (:mod:`repro.exec`) is validated against; production paths
    compile a plan instead.
    """
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    for i in rows:
        i = int(i)
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        if hi == lo or cols[-1] != i:
            raise SingularMatrixError(
                f"row {i} has no stored diagonal entry"
            )
        diag = vals[-1]
        if diag == 0.0:
            raise SingularMatrixError(f"zero diagonal at row {i}")
        acc = b[i] - np.dot(vals[:-1], x[cols[:-1]])
        x[i] = acc / diag


def _check_rhs(n: int, b: np.ndarray) -> np.ndarray:
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise MatrixFormatError("right-hand side has wrong length")
    return b


def forward_substitution(
    lower: CSRMatrix,
    b: np.ndarray,
    *,
    plan: ExecutionPlan | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Solve ``L x = b`` for lower-triangular ``L`` (Eq. 2.1).

    Parameters
    ----------
    plan:
        Precompiled plan for ``lower`` (``direction="forward"``); compiled
        on the fly when omitted.
    backend:
        Execution backend name (default: auto-selected, see
        :func:`repro.exec.get_backend`).

    Examples
    --------
    >>> import numpy as np
    >>> from repro import forward_substitution
    >>> from repro.matrix.generators import narrow_band_lower
    >>> L = narrow_band_lower(50, 0.2, 4.0, seed=0)
    >>> x = forward_substitution(L, np.ones(50))
    >>> bool(np.allclose(L.matvec(x), np.ones(50)))
    True
    """
    if plan is None:
        plan = compile_plan(lower)
    else:
        plan.require_compatible(lower.n, "forward")
    b = _check_rhs(plan.n, b)
    return get_backend(backend).solve(plan, b)


def backward_substitution(
    upper: CSRMatrix,
    b: np.ndarray,
    *,
    plan: ExecutionPlan | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U`` (reverse sweep).

    Examples
    --------
    >>> import numpy as np
    >>> from repro import backward_substitution
    >>> from repro.matrix.generators import narrow_band_lower
    >>> U = narrow_band_lower(50, 0.2, 4.0, seed=0).transpose()
    >>> x = backward_substitution(U, np.ones(50))
    >>> bool(np.allclose(U.matvec(x), np.ones(50)))
    True
    """
    if plan is None:
        plan = compile_plan(upper, direction="backward")
    else:
        plan.require_compatible(upper.n, "backward")
    b = _check_rhs(plan.n, b)
    return get_backend(backend).solve(plan, b)
