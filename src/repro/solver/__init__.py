"""SpTRSV execution: plan-based kernels, schedule-driven execution, threads.

All solve paths lower their ``(matrix, schedule)`` pair through the
:mod:`repro.exec` subsystem — :func:`repro.exec.compile_plan` builds an
:class:`~repro.exec.plan.ExecutionPlan` once, and a pluggable backend
kernel (:func:`repro.exec.get_backend`) executes it with one vectorized
batch per dependency layer.  Precompiled plans can be passed in to
amortize lowering across repeated solves.

* :mod:`~repro.solver.sptrsv` — forward/backward substitution (the
  paper's kernel, Section 6.1) plus the per-row reference kernel;
* :mod:`~repro.solver.scheduled` — executes a
  :class:`~repro.scheduler.schedule.Schedule` (deterministic emulation
  used for correctness verification);
* :mod:`~repro.solver.threaded` — a real ``threading``-based executor with
  barriers (functional parallel execution; the GIL prevents speed-ups in
  CPython but the code path mirrors the OpenMP kernel);
* :mod:`~repro.solver.cg` / :mod:`~repro.solver.gauss_seidel` — downstream
  consumers of SpTRSV (preconditioned conjugate gradient, Gauß–Seidel),
  the applications the paper's introduction motivates; both compile their
  plans once and reuse them across iterations.
"""

from repro.solver.backward import (
    backward_dag,
    forward_sptrsm,
    scheduled_backward_sptrsv,
    scheduled_sptrsm,
)
from repro.solver.cg import conjugate_gradient, ichol_preconditioner
from repro.solver.gauss_seidel import gauss_seidel
from repro.solver.scheduled import scheduled_sptrsv
from repro.solver.sptrsv import (
    backward_substitution,
    forward_substitution,
)
from repro.solver.threaded import threaded_sptrsv

__all__ = [
    "backward_dag",
    "backward_substitution",
    "conjugate_gradient",
    "forward_sptrsm",
    "forward_substitution",
    "gauss_seidel",
    "ichol_preconditioner",
    "scheduled_backward_sptrsv",
    "scheduled_sptrsm",
    "scheduled_sptrsv",
    "threaded_sptrsv",
]
