"""Structured tracing: nested spans flushed as append-only JSONL.

A :class:`Tracer` hands out :class:`Span` context managers.  Each span
records a monotonic duration, a process-unique id, and the id of the
span it was opened inside (per-thread parent stack), so a flushed trace
reconstructs the causal tree: request enqueue → batch coalesce →
backend solve in the service, compile → lower → verify in exec, one
span per tuner race arm, one per store merge/prune/retrain.

Completed spans buffer in memory; :meth:`Tracer.flush_jsonl` rewrites
the whole file through :func:`repro.utils.atomic.atomic_write_text`, so
a reader (``repro obs tail``) never sees a torn line and re-flushing is
idempotent — the buffer only grows, and the newest file is a superset
of every earlier one.

Examples
--------
>>> from repro.obs.trace import Tracer
>>> tracer = Tracer()
>>> with tracer.span("service.batch", system="demo") as sp:
...     with tracer.span("exec.solve"):
...         pass
...     sp.tag(batch_size=4)
>>> [e["name"] for e in tracer.events()]
['exec.solve', 'service.batch']
>>> inner, outer = tracer.events()
>>> inner["parent_id"] == outer["span_id"]
True
>>> outer["tags"]["batch_size"]
4
"""

from __future__ import annotations

import itertools
import json
import threading
import time

from repro.utils.atomic import atomic_write_text

__all__ = ["Span", "Tracer"]


class Span:
    """One timed, tagged unit of work.  Use as a context manager; spans
    nest per-thread, and a span opened inside another records that
    span's id as its ``parent_id``."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "tags",
                 "_t0", "_wall0", "status")

    def __init__(self, tracer: Tracer, name: str,
                 tags: dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = next(tracer._ids)
        self.parent_id: int | None = None
        self.tags = tags
        self._t0 = 0.0
        self._wall0 = 0.0
        self.status = "ok"

    def tag(self, **tags: object) -> None:
        """Attach tags discovered mid-span (e.g. batch size, rows
        merged) — they land in the emitted event alongside the tags
        passed at open."""
        self.tags.update(tags)

    def __enter__(self) -> Span:
        stack = self._tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._wall0 = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur = time.perf_counter() - self._t0
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.status = "error"
            self.tags.setdefault("error", exc_type.__name__)
        self._tracer._emit({
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": threading.get_ident(),
            "ts": self._wall0,
            "dur_s": dur,
            "status": self.status,
            "tags": self.tags,
        })


class Tracer:
    """Process-wide span factory and event buffer."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **tags: object) -> Span:
        """A new span named ``name`` with initial ``tags``."""
        return Span(self, name, dict(tags))

    def event(self, name: str, **tags: object) -> None:
        """A zero-duration point event (hot-swap applied, plan evicted)
        parented under the current span, if any."""
        stack = self._stack()
        self._emit({
            "name": name,
            "span_id": next(self._ids),
            "parent_id": stack[-1].span_id if stack else None,
            "thread": threading.get_ident(),
            "ts": time.time(),
            "dur_s": 0.0,
            "status": "ok",
            "tags": dict(tags),
        })

    def _emit(self, payload: dict) -> None:
        with self._lock:
            self._events.append(payload)

    def events(self) -> list[dict]:
        """Completed events in completion order (a copy)."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def flush_jsonl(self, path: str) -> int:
        """Atomically write every buffered event as JSONL; returns the
        event count.  The buffer is retained, so each flush writes a
        superset of the previous one."""
        events = self.events()
        text = "".join(
            json.dumps(e, sort_keys=True, default=str) + "\n"
            for e in events
        )
        atomic_write_text(path, text)
        return len(events)
