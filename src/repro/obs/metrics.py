"""Metrics: counters, gauges and mergeable log-bucket histograms.

Design constraints (the reasons this is not a ``dict`` of floats):

* **Hot-path writes take no lock.**  Counters and histograms keep one
  cell per writer thread; after a thread's first touch, ``inc`` /
  ``observe`` mutate only that thread's cell — single-writer, so no
  increment is ever lost and no lock is contended (the same discipline
  :class:`~repro.exec.PlanCache` applies to its builders).  The
  registry lock guards only cell/metric *creation* and snapshots.
* **Snapshots never tear.**  A snapshot sums the per-thread cells under
  the creation lock; it may miss increments still in flight (they land
  in the next snapshot) but never observes a half-written value.
* **Histograms are mergeable.**  Buckets are *fixed* log-spaced edges
  derived from ``(lo, hi, per_decade)`` — every histogram of the same
  spec has bit-identical edges, so merging two shards' snapshots just
  adds bucket counts, and the merged percentiles equal the percentiles
  of one registry that observed the union.  Reported percentiles sit at
  the geometric midpoint of their bucket: with the default 16 buckets
  per decade the relative error vs an exact sort is bounded by
  ``10**(1/32) - 1`` (~7.5%), the figure ``docs/observability.md``
  documents.

Examples
--------
>>> from repro.obs.metrics import MetricsRegistry, merge_snapshots
>>> a, b = MetricsRegistry(), MetricsRegistry()
>>> for v in (0.010, 0.020):
...     a.histogram("lat").observe(v)
>>> b.histogram("lat").observe(0.040)
>>> merged = merge_snapshots(a.snapshot(), b.snapshot())
>>> merged["histograms"]["lat"]["count"]
3
"""

from __future__ import annotations

import math
import threading

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "DEFAULT_HI",
    "DEFAULT_LO",
    "DEFAULT_PER_DECADE",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "snapshot_percentile",
]

#: Default histogram range: 100 ns .. 10 000 s — every latency this
#: repo can produce, from a single gate check to a full suite run.
DEFAULT_LO = 1e-7
DEFAULT_HI = 1e4

#: Buckets per decade.  16 gives a bucket ratio of ``10**(1/16)``
#: (~15.5%) and a midpoint percentile error bound of ``10**(1/32) - 1``
#: (~7.5%) — tight enough for p50/p99 dashboards, coarse enough that a
#: full histogram is ~178 integers.
DEFAULT_PER_DECADE = 16


def metric_key(name: str, labels: dict[str, str]) -> str:
    """Canonical ``name{k=v,...}`` key (sorted labels; bare name when
    unlabelled) — the snapshot/Prometheus identity of a metric."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing counter with per-thread cells."""

    __slots__ = ("name", "labels", "_lock", "_cells")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._cells: dict[int, list[float]] = {}

    def _cell(self) -> list[float]:
        ident = threading.get_ident()
        cell = self._cells.get(ident)
        if cell is None:
            with self._lock:
                cell = self._cells.setdefault(ident, [0.0])
        return cell

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (lock-free after this thread's first increment)."""
        self._cell()[0] += n

    @property
    def value(self) -> float:
        """Current total across all writer threads."""
        with self._lock:
            return sum(cell[0] for cell in self._cells.values())

    def _snapshot(self) -> dict[str, object]:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self.value}


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _snapshot(self) -> dict[str, object]:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self.value}


class _HistCell:
    """One writer thread's private histogram state (single-writer)."""

    __slots__ = ("counts", "n", "total", "vmin", "vmax")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.n = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf


class Histogram:
    """Fixed log-spaced-bucket histogram with mergeable snapshots.

    Bucket ``0`` holds values ``<= lo``; bucket ``i`` (``1..nb``) holds
    ``lo * r**(i-1) < v <= lo * r**i`` with ``r = 10**(1/per_decade)``;
    the last bucket holds values ``> hi``.  Two histograms with the
    same ``(lo, hi, per_decade)`` have identical edges, which is what
    makes shard merges exact at the bucket level.
    """

    __slots__ = ("name", "labels", "lo", "hi", "per_decade",
                 "_n_buckets", "_log_r", "_log_lo", "_lock", "_cells")

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        *,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        per_decade: int = DEFAULT_PER_DECADE,
    ) -> None:
        if not (0.0 < lo < hi):
            raise ConfigurationError(
                f"histogram bounds need 0 < lo < hi, got ({lo}, {hi})"
            )
        if per_decade < 1:
            raise ConfigurationError("per_decade must be >= 1")
        self.name = name
        self.labels = labels
        self.lo = float(lo)
        self.hi = float(hi)
        self.per_decade = int(per_decade)
        decades = math.log10(self.hi / self.lo)
        inner = max(int(math.ceil(decades * self.per_decade - 1e-9)), 1)
        # +2: one underflow and one overflow bucket
        self._n_buckets = inner + 2
        self._log_r = math.log(10.0) / self.per_decade
        self._log_lo = math.log(self.lo)
        self._lock = threading.Lock()
        self._cells: dict[int, _HistCell] = {}

    @property
    def spec(self) -> tuple[float, float, int]:
        return (self.lo, self.hi, self.per_decade)

    def _cell(self) -> _HistCell:
        ident = threading.get_ident()
        cell = self._cells.get(ident)
        if cell is None:
            with self._lock:
                cell = self._cells.setdefault(
                    ident, _HistCell(self._n_buckets)
                )
        return cell

    def bucket_index(self, value: float) -> int:
        """The bucket a value lands in (0 = underflow, last = overflow)."""
        if value <= self.lo:
            return 0
        if value > self.hi:
            return self._n_buckets - 1
        idx = int(math.floor(
            (math.log(value) - self._log_lo) / self._log_r - 1e-12
        )) + 1
        return min(max(idx, 1), self._n_buckets - 2)

    def bucket_upper_edge(self, index: int) -> float:
        """Upper edge of bucket ``index`` (``inf`` for the overflow)."""
        if index <= 0:
            return self.lo
        if index >= self._n_buckets - 1:
            return math.inf
        return math.exp(self._log_lo + index * self._log_r)

    def observe(self, value: float) -> None:
        """Record one value (lock-free after this thread's first)."""
        cell = self._cell()
        cell.counts[self.bucket_index(value)] += 1
        cell.n += 1
        cell.total += value
        if value < cell.vmin:
            cell.vmin = value
        if value > cell.vmax:
            cell.vmax = value

    @property
    def count(self) -> int:
        with self._lock:
            return sum(cell.n for cell in self._cells.values())

    def percentile(self, q: float) -> float | None:
        """The q-quantile (``q`` in [0, 1]); ``None`` when empty."""
        return snapshot_percentile(self._snapshot(), q)

    def _snapshot(self) -> dict[str, object]:
        with self._lock:
            cells = list(self._cells.values())
            merged = [0] * self._n_buckets
            n = 0
            total = 0.0
            vmin = math.inf
            vmax = -math.inf
            for cell in cells:
                for i, c in enumerate(cell.counts):
                    merged[i] += c
                n += cell.n
                total += cell.total
                vmin = min(vmin, cell.vmin)
                vmax = max(vmax, cell.vmax)
        counts = {str(i): c for i, c in enumerate(merged) if c}
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "lo": self.lo,
            "hi": self.hi,
            "per_decade": self.per_decade,
            "n_buckets": self._n_buckets,
            "count": n,
            "sum": total,
            "min": None if n == 0 else vmin,
            "max": None if n == 0 else vmax,
            "counts": counts,
        }

    def _ingest(self, snap: dict) -> None:
        """Fold a snapshot of the same spec into this histogram."""
        _require_same_spec(self._snapshot(), snap)
        cell = self._cell()
        for raw_idx, c in snap.get("counts", {}).items():
            cell.counts[int(raw_idx)] += int(c)
        cell.n += int(snap["count"])
        cell.total += float(snap["sum"])
        if snap.get("min") is not None:
            cell.vmin = min(cell.vmin, float(snap["min"]))
        if snap.get("max") is not None:
            cell.vmax = max(cell.vmax, float(snap["max"]))


def _require_same_spec(a: dict, b: dict) -> None:
    for field in ("lo", "hi", "per_decade"):
        if a.get(field) != b.get(field):
            raise ConfigurationError(
                f"cannot merge histograms with different bucket specs: "
                f"{field}={a.get(field)} vs {b.get(field)} "
                f"(histogram {a.get('name')!r})"
            )


def snapshot_percentile(snap: dict, q: float) -> float | None:
    """The q-quantile of a histogram *snapshot* (``None`` when empty).

    Returns the geometric midpoint of the bucket containing the rank
    ``ceil(q * count)`` — the true order statistic lies in the same
    bucket, so the relative error is bounded by half a bucket ratio
    (``10**(1/(2*per_decade)) - 1``).  Underflow reports ``lo``;
    overflow reports ``max`` when known (else ``hi``).

    Examples
    --------
    >>> from repro.obs.metrics import Histogram, snapshot_percentile
    >>> h = Histogram("x", {})
    >>> for v in (1.0, 2.0, 4.0, 8.0):
    ...     h.observe(v)
    >>> round(snapshot_percentile(h._snapshot(), 0.5), 2)  # ~2.0
    1.91
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    total = int(snap.get("count", 0))
    if total == 0:
        return None
    lo = float(snap["lo"])
    per_decade = int(snap["per_decade"])
    n_buckets = int(snap["n_buckets"])
    log_r = math.log(10.0) / per_decade
    rank = max(int(math.ceil(q * total)), 1)
    cum = 0
    counts = snap.get("counts", {})
    for i in range(n_buckets):
        cum += int(counts.get(str(i), 0))
        if cum >= rank:
            if i == 0:
                return lo
            if i == n_buckets - 1:
                vmax = snap.get("max")
                return float(vmax) if vmax is not None else float(
                    snap["hi"]
                )
            # geometric midpoint of (edge(i-1), edge(i)]
            return math.exp(math.log(lo) + (i - 0.5) * log_r)
    return float(snap.get("max") or snap["hi"])  # pragma: no cover


class MetricsRegistry:
    """Keyed get-or-create home of every metric in one process/scope.

    Examples
    --------
    >>> from repro.obs.metrics import MetricsRegistry
    >>> reg = MetricsRegistry()
    >>> reg.counter("cache.hits", cache="plan").inc()
    >>> reg.counter("cache.hits", cache="plan").value
    1.0
    >>> sorted(reg.snapshot()["counters"])
    ['cache.hits{cache=plan}']
    """

    __slots__ = ("_lock", "_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        """Get-or-create the counter ``name`` with ``labels``."""
        labels = {k: str(v) for k, v in labels.items()}
        key = metric_key(name, labels)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters.setdefault(
                    key, Counter(name, labels)
                )
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get-or-create the gauge ``name`` with ``labels``."""
        labels = {k: str(v) for k, v in labels.items()}
        key = metric_key(name, labels)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges.setdefault(key, Gauge(name, labels))
        return metric

    def histogram(
        self,
        name: str,
        *,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        per_decade: int = DEFAULT_PER_DECADE,
        **labels: object,
    ) -> Histogram:
        """Get-or-create the histogram ``name`` with ``labels``.

        Re-requesting an existing histogram with a *different* bucket
        spec raises :class:`~repro.errors.ConfigurationError` — silently
        serving mismatched buckets would break shard mergeability.
        """
        labels = {k: str(v) for k, v in labels.items()}
        key = metric_key(name, labels)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms.setdefault(
                    key,
                    Histogram(name, labels, lo=lo, hi=hi,
                              per_decade=per_decade),
                )
        if metric.spec != (float(lo), float(hi), int(per_decade)):
            raise ConfigurationError(
                f"histogram {key!r} already registered with bucket spec "
                f"{metric.spec}, requested ({lo}, {hi}, {per_decade})"
            )
        return metric

    def snapshot(self) -> dict[str, object]:
        """JSON-ready view of every metric (see ``docs/observability.md``
        for the schema).  Safe to call while writers are active."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "schema": 1,
            "counters": {k: m._snapshot() for k, m in counters.items()},
            "gauges": {k: m._snapshot() for k, m in gauges.items()},
            "histograms": {
                k: m._snapshot() for k, m in histograms.items()
            },
        }

    def ingest(self, snapshot: dict) -> None:
        """Fold a snapshot (from another shard/worker) into this registry.

        Counter values add, gauges last-write-win, histogram buckets
        add (specs must match).  Ingesting shards in a fixed order makes
        the merged registry deterministic regardless of which shard
        finished first.
        """
        for payload in snapshot.get("counters", {}).values():
            self.counter(payload["name"], **payload["labels"]).inc(
                payload["value"]
            )
        for payload in snapshot.get("gauges", {}).values():
            self.gauge(payload["name"], **payload["labels"]).set(
                payload["value"]
            )
        for payload in snapshot.get("histograms", {}).values():
            self.histogram(
                payload["name"],
                lo=payload["lo"],
                hi=payload["hi"],
                per_decade=payload["per_decade"],
                **payload["labels"],
            )._ingest(payload)

    def __len__(self) -> int:
        with self._lock:
            return (len(self._counters) + len(self._gauges)
                    + len(self._histograms))

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})"
            )


def merge_snapshots(a: dict, b: dict) -> dict:
    """Pure merge of two registry snapshots (commutative; bucket counts
    and counter values are exact integers/sums, so ``merge(a, b)`` and
    ``merge(b, a)`` agree — the property test in
    ``tests/test_obs_metrics.py`` pins this down)."""
    reg = MetricsRegistry()
    reg.ingest(a)
    reg.ingest(b)
    return reg.snapshot()
