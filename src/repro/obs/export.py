"""Rendering flushed observability data: JSON reports + Prometheus text.

Pure functions over the artifacts :func:`repro.obs.flush` writes — no
registry access, so they work equally on a live snapshot or one loaded
from another machine's ``metrics.json``.  The ``repro obs`` CLI verbs
are thin wrappers over these.
"""

from __future__ import annotations

import json
import math
import os

from repro.errors import ReproError
from repro.obs.metrics import snapshot_percentile

__all__ = ["load_dir", "prometheus_text", "report"]

#: Percentiles every report surfaces.
REPORT_QUANTILES = (0.50, 0.95, 0.99)

#: Histogram names the per-system section of :func:`report` pivots on
#: (grouped by their ``system`` label).
LATENCY_METRIC = "service.request_latency_seconds"
BATCH_METRIC = "service.batch_size"
QUEUE_WAIT_METRIC = "service.queue_wait_seconds"


def load_dir(directory: str | os.PathLike) -> tuple[dict, list[dict]]:
    """Load ``(snapshot, events)`` from an obs directory.

    ``metrics.json`` is required (a missing file raises
    :class:`~repro.errors.ReproError` naming the path); ``trace.jsonl``
    is optional and yields ``[]`` when absent.
    """
    directory = os.fspath(directory)
    metrics_path = os.path.join(directory, "metrics.json")
    trace_path = os.path.join(directory, "trace.jsonl")
    try:
        with open(metrics_path, encoding="utf-8") as fh:
            snapshot = json.load(fh)
    except FileNotFoundError:
        raise ReproError(
            f"no metrics snapshot at {metrics_path!r} — run with "
            f"REPRO_OBS=1 (or --obs-dir) so the service/suite flushes one"
        ) from None
    events: list[dict] = []
    if os.path.exists(trace_path):
        with open(trace_path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    return snapshot, events


def _quantiles(snap: dict) -> dict[str, float | None]:
    return {
        f"p{int(q * 100)}": snapshot_percentile(snap, q)
        for q in REPORT_QUANTILES
    }


def _hist_summary(snap: dict) -> dict[str, object]:
    out: dict[str, object] = {
        "count": snap.get("count", 0),
        "sum": snap.get("sum", 0.0),
        "min": snap.get("min"),
        "max": snap.get("max"),
    }
    out.update(_quantiles(snap))
    return out


def report(snapshot: dict, events: list[dict] | None = None) -> dict:
    """Human/CI-facing summary of a registry snapshot.

    Shape::

        {"systems": {name: {"latency": {...p50/p95/p99...},
                            "batch":   {...},
                            "queue_wait": {...}}},
         "counters": {key: value}, "gauges": {key: value},
         "histograms": {key: {count, sum, min, max, p50, p95, p99}},
         "trace": {"events": n, "by_name": {...}} }

    The ``systems`` section pivots the service's per-system latency,
    batch-size and queue-wait histograms by their ``system`` label —
    the view the acceptance criterion ("non-trivial p50/p99 per
    system") reads.
    """
    systems: dict[str, dict] = {}
    histograms: dict[str, dict] = {}
    for key, snap in snapshot.get("histograms", {}).items():
        histograms[key] = _hist_summary(snap)
        system = snap.get("labels", {}).get("system")
        if system is None:
            continue
        if snap.get("name") == LATENCY_METRIC:
            systems.setdefault(system, {})["latency"] = _hist_summary(snap)
        elif snap.get("name") == BATCH_METRIC:
            systems.setdefault(system, {})["batch"] = _hist_summary(snap)
        elif snap.get("name") == QUEUE_WAIT_METRIC:
            systems.setdefault(system, {})["queue_wait"] = _hist_summary(
                snap
            )
    out: dict[str, object] = {
        "systems": systems,
        "counters": {
            key: snap["value"]
            for key, snap in snapshot.get("counters", {}).items()
        },
        "gauges": {
            key: snap["value"]
            for key, snap in snapshot.get("gauges", {}).items()
        },
        "histograms": histograms,
    }
    if events is not None:
        by_name: dict[str, int] = {}
        for event in events:
            name = str(event.get("name"))
            by_name[name] = by_name.get(name, 0) + 1
        out["trace"] = {
            "events": len(events),
            "by_name": dict(sorted(by_name.items())),
        }
    return out


def _prom_name(name: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def _prom_labels(labels: dict[str, str], extra: str = "") -> str:
    parts = [
        f'{_prom_name(k)}="{labels[k]}"' for k in sorted(labels)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters become ``counter`` series, gauges ``gauge``, histograms the
    standard cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
    triple (only non-empty buckets plus ``+Inf`` are emitted — the
    log-spaced grid is ~178 buckets, most of them zero).

    Examples
    --------
    >>> from repro.obs.metrics import MetricsRegistry
    >>> from repro.obs.export import prometheus_text
    >>> reg = MetricsRegistry()
    >>> reg.counter("cache.hits", cache="plan").inc(2)
    >>> print(prometheus_text(reg.snapshot()))
    # TYPE cache_hits counter
    cache_hits{cache="plan"} 2
    <BLANKLINE>
    """
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for snap in snapshot.get("counters", {}).values():
        name = _prom_name(snap["name"])
        type_line(name, "counter")
        lines.append(
            f"{name}{_prom_labels(snap['labels'])} {_fmt(snap['value'])}"
        )
    for snap in snapshot.get("gauges", {}).values():
        name = _prom_name(snap["name"])
        type_line(name, "gauge")
        lines.append(
            f"{name}{_prom_labels(snap['labels'])} {_fmt(snap['value'])}"
        )
    for snap in snapshot.get("histograms", {}).values():
        name = _prom_name(snap["name"])
        type_line(name, "histogram")
        labels = snap["labels"]
        counts = snap.get("counts", {})
        n_buckets = int(snap["n_buckets"])
        # reconstruct the upper edges from the spec
        lo = float(snap["lo"])
        log_r = math.log(10.0) / int(snap["per_decade"])
        cum = 0
        for i in range(n_buckets - 1):
            c = int(counts.get(str(i), 0))
            if c == 0:
                continue
            cum += c
            edge = lo if i == 0 else math.exp(math.log(lo) + i * log_r)
            le = _prom_labels(labels, f'le="{_fmt(edge)}"')
            lines.append(f"{name}_bucket{le} {cum}")
        total = int(snap.get("count", 0))
        inf = _prom_labels(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{inf} {total}")
        lines.append(
            f"{name}_sum{_prom_labels(labels)} "
            f"{_fmt(float(snap.get('sum', 0.0)))}"
        )
        lines.append(f"{name}_count{_prom_labels(labels)} {total}")
    return "\n".join(lines) + "\n"
