"""Observability: process-wide metrics registry + structured tracing.

The subsystem every serving-era feature reports through — the fleet's
eyes.  Three pieces:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges and latency histograms.  Histograms use **fixed
  log-spaced buckets**, so percentiles are mergeable across service
  shards and suite workers: merging two snapshots gives bit-identical
  bucket counts to observing the union in one registry.
* :mod:`repro.obs.trace` — lightweight ``span(name, **tags)`` context
  managers emitting append-only JSONL events with parent/child ids
  (request enqueue → coalesce → backend solve, plan compile/verify,
  tuner race arms, store merges).
* :mod:`repro.obs.export` — JSON report + Prometheus text rendering of
  a snapshot, behind the ``repro obs`` CLI.

Everything is **off by default**: instrumented call sites reach this
module only through :mod:`repro.obs_gate` (``REPRO_OBS=1``), and with
the gate off ``import repro`` never imports this package — the
zero-overhead contract asserted in ``benchmarks/test_exec_plan_bench``.

State is process-global on purpose (one registry, one tracer), so a
service, its tuner and the plan cache all land in a single snapshot;
:func:`flush` persists both halves atomically into ``REPRO_OBS_DIR``
(default ``.repro-obs``) for ``repro obs report|tail|export``.

Examples
--------
>>> from repro import obs
>>> reg = obs.MetricsRegistry()
>>> reg.counter("demo.requests").inc(3)
>>> reg.counter("demo.requests").value
3.0
>>> h = reg.histogram("demo.latency_seconds")
>>> for v in (0.001, 0.002, 0.004):
...     h.observe(v)
>>> h.count
3
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    snapshot_percentile,
)
from repro.obs.trace import Span, Tracer
from repro.obs_gate import OBS_DIR_ENV_VAR
from repro.utils.atomic import atomic_write_json

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "clock",
    "default_dir",
    "event",
    "flush",
    "get_registry",
    "get_tracer",
    "merge_snapshots",
    "reset",
    "scoped_registry",
    "snapshot_percentile",
    "span",
]

#: Default flush directory when ``REPRO_OBS_DIR`` is unset.
DEFAULT_DIR = ".repro-obs"

#: File names :func:`flush` writes inside the obs directory.
METRICS_FILE = "metrics.json"
TRACE_FILE = "trace.jsonl"

_REGISTRY = MetricsRegistry()
_TRACER = Tracer()

#: Re-exported monotonic clock for gate-protected call sites: hot-path
#: modules (``repro/exec/``) may not read clocks directly (the
#: ``direct-timing-in-hot-path`` lint rule) — timing there runs as
#: ``obs.clock()`` behind ``get_obs()``, which is free when disabled.
clock = time.perf_counter


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def span(name: str, **tags: object):
    """A span on the process-wide tracer (see :meth:`Tracer.span`)."""
    return _TRACER.span(name, **tags)


def event(name: str, **tags: object) -> None:
    """A zero-duration event on the process-wide tracer."""
    _TRACER.event(name, **tags)


def reset() -> None:
    """Swap in a fresh registry and tracer (test isolation)."""
    global _REGISTRY, _TRACER
    _REGISTRY = MetricsRegistry()
    _TRACER = Tracer()


@contextmanager
def scoped_registry():
    """Temporarily swap the process-wide registry for a fresh one.

    The parallel-suite workers use this to produce **per-shard**
    snapshots: metrics recorded inside the scope land in the scoped
    registry only, the caller snapshots it, and the parent merges the
    per-shard snapshots in instance order — deterministic no matter
    which worker finished first.  Yields the fresh registry; the
    previous one is restored on exit.
    """
    global _REGISTRY
    previous = _REGISTRY
    scoped = MetricsRegistry()
    _REGISTRY = scoped
    try:
        yield scoped
    finally:
        _REGISTRY = previous


def default_dir() -> str:
    """The flush directory: ``$REPRO_OBS_DIR`` or ``.repro-obs``."""
    return os.environ.get(OBS_DIR_ENV_VAR) or DEFAULT_DIR


def flush(directory: str | os.PathLike | None = None) -> dict[str, str]:
    """Persist the registry snapshot and trace atomically.

    Writes ``metrics.json`` (the :meth:`MetricsRegistry.snapshot`
    payload) and ``trace.jsonl`` (one completed span per line) into
    ``directory`` (default :func:`default_dir`), each through
    :mod:`repro.utils.atomic` so readers never observe a torn file.
    The global state keeps accumulating — flushing twice writes a
    superset, so "latest file wins" is always correct.  Returns the
    paths written.
    """
    directory = os.fspath(directory if directory is not None
                          else default_dir())
    os.makedirs(directory, exist_ok=True)
    metrics_path = os.path.join(directory, METRICS_FILE)
    trace_path = os.path.join(directory, TRACE_FILE)
    atomic_write_json(_REGISTRY.snapshot(), metrics_path)
    _TRACER.flush_jsonl(trace_path)
    return {"metrics": metrics_path, "trace": trace_path}
