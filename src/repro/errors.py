"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Finer-grained subclasses distinguish the major failure
modes: malformed matrices, invalid schedules, and bad configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class MatrixFormatError(ReproError):
    """A sparse matrix is malformed (bad indptr, out-of-range indices, ...)."""


class NotTriangularError(MatrixFormatError):
    """An operation required a (lower or upper) triangular matrix."""


class SingularMatrixError(ReproError):
    """A triangular solve encountered a zero (or missing) diagonal entry."""


class InvalidScheduleError(ReproError):
    """A schedule violates Definition 2.1 of the paper.

    Either a precedence constraint ``sigma(u) <= sigma(v)`` is broken, or a
    cross-core dependency is not separated by a synchronization barrier.
    """


class InvalidPartitionError(ReproError):
    """A vertex partition is not a partition (overlap / missing vertices),
    or violates a required structural property (e.g. not a cascade)."""


class PlanVerificationError(ReproError):
    """A compiled :class:`~repro.exec.plan.ExecutionPlan` failed static
    verification (:mod:`repro.analysis.verify`).

    Raised instead of executing a structurally corrupt plan — a batch
    pointer that does not cover every row, a gather index reaching into
    a not-yet-completed batch, a truncated dtype.  Carries the full
    :class:`~repro.analysis.verify.PlanVerificationReport` as
    ``report``; each violation names the broken invariant and the
    offending row/batch."""

    def __init__(self, report) -> None:
        self.report = report
        names = ", ".join(sorted(report.invariants))
        first = report.violations[0]
        super().__init__(
            f"plan failed static verification ({len(report.violations)} "
            f"violation(s) of: {names}); first: {first.message}"
        )


class PlanArtifactError(ReproError):
    """A persisted :class:`~repro.exec.plan.ExecutionPlan` artifact
    (:mod:`repro.store.plan_store`) cannot be loaded.

    Base class of every load-rejection mode; callers that treat the
    plan store as a cache catch this (plus
    :class:`PlanVerificationError` from the mandatory post-load
    ``check_plan`` gate) and fall back to compiling — a rejected
    artifact is never served."""


class PlanArtifactMissingError(PlanArtifactError):
    """No artifact exists under the requested plan key (a cache miss,
    surfaced as an error only by the explicit ``load`` API)."""


class PlanArtifactCorruptError(PlanArtifactError):
    """The artifact's bytes are damaged: a torn or truncated sidecar,
    an unreadable/truncated npz payload, a missing array field, or a
    content-hash mismatch (flipped bytes)."""


class PlanArtifactVersionError(PlanArtifactError):
    """The artifact was written by an incompatible plan-store format
    version; this build refuses to reinterpret it."""


class PlanArtifactStaleError(PlanArtifactError):
    """The artifact is internally intact but does not describe the
    requested workload: mismatched matrix fingerprint, schedule
    identity, sweep direction, or toolchain digest."""


class ConfigurationError(ReproError):
    """Invalid user-supplied configuration (core counts, parameters, ...)."""


class ServiceClosedError(ConfigurationError):
    """A request was submitted to a closed serving component.

    Raised by :meth:`~repro.service.SolveService.submit` /
    ``submit_many`` / ``solve`` / ``solve_block`` (and the matching
    :class:`~repro.service.ServingGateway` paths) after ``close()``.
    Subclasses :class:`ConfigurationError`, so handlers written before
    this name existed keep working."""


class AdmissionError(ReproError):
    """A serving queue refused new work because it is full.

    Raised at submission time when a bounded request queue
    (``max_queue``) would overflow — backpressure surfaces as a named,
    immediate error instead of unbounded queue growth.  Nothing was
    enqueued: a rejected submission has no partial effect."""


class DeadlineExceededError(ReproError):
    """A request's deadline passed before the service executed it.

    Set as the *exception of the request's future* (it is the client's
    outcome, not a submission-time failure): the worker fails expired
    requests instead of letting dead work occupy batch slots."""


class BackendUnavailableError(ConfigurationError):
    """An execution backend was requested but cannot run in this
    environment (e.g. the ``numba`` backend without numba installed)."""
