"""Command-line interface.

Exposes the library's main workflows without writing Python::

    python -m repro schedule  --matrix L.mtx --scheduler growlocal \
                              --cores 8 --output sched.json
    python -m repro solve     --matrix L.mtx --schedule sched.json
    python -m repro simulate  --matrix L.mtx --schedule sched.json \
                              --machine intel_xeon_6238t
    python -m repro compare   --matrix L.mtx --cores 22
    python -m repro suite     --dataset narrow_band --workers 4 \
                              --schedulers growlocal,hdagg
    python -m repro tune      --dataset narrow_band \
                              --machine intel_xeon_6238t \
                              --output profile.json
    python -m repro tune      --dataset narrow_band \
                              --profile profile.json \
                              --train --model model.json
    python -m repro tune      --dataset narrow_band \
                              --profile profile.json --model model.json
    python -m repro store     merge --into fleet.store a.store b.store
    python -m repro store     stats --store fleet.store --json
    python -m repro store     prune --store fleet.store --keep 5000
    python -m repro store     retrain --store fleet.store \
                              --model model.json
    python -m repro plans     save --store plans.store --matrix L.mtx \
                              --scheduler growlocal --cores 8
    python -m repro plans     verify --store plans.store --json
    python -m repro generate  --kind erdos_renyi --n 10000 --p 5e-4 \
                              --output L.mtx
    python -m repro serve     --shards 4 --systems 8 --requests 2000
    python -m repro loadgen   --shards 2 --rate 500 --duration 2 \
                              --zipf 1.1 --max-queue 256 --json
    python -m repro datasets  --name suitesparse
    python -m repro machines
    python -m repro obs       report --dir .repro-obs --json
    python -m repro obs       tail --dir .repro-obs -n 20
    python -m repro obs       export --dir .repro-obs

``compare``, ``suite``, ``tune`` and every ``store``/``plans`` verb
accept ``--json`` for machine-readable output (consumed by CI smoke
checks and scripting instead of scraping the tables).  The ``plans``
verbs manage the persisted-plan disk tier
(:mod:`repro.store.plan_store`, ``REPRO_PLAN_STORE_DIR``): ``save``
compiles and persists an artifact, ``load`` runs the full integrity
gate, ``verify`` audits a whole store, ``gc`` enforces the LRU byte
budget (``docs/plan_store.md``).  Training observations
flow into a fleet-wide observation store (``tune --store DIR``, or the
profile's ``<path>.store`` sidecar by default); ``tune --train`` fits
the learned prior from it, ``tune --model`` ranks with the fit, and
the ``store`` verbs merge/prune/summarize/retrain the fleet's data
(``docs/cli.md`` documents every verb).

Matrices are read/written in Matrix Market format; schedules in the JSON
format of :mod:`repro.scheduler.serialize`.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from contextlib import contextmanager

import numpy as np

from repro.errors import ReproError
from repro.graph.dag import DAG
from repro.graph.wavefront import critical_path_length
from repro.machine.bsp_sim import simulate_bsp
from repro.machine.model import get_machine, list_machines
from repro.machine.serial_sim import simulate_serial
from repro.matrix.io_mm import read_matrix_market, write_matrix_market
from repro.scheduler.registry import available_schedulers, make_scheduler
from repro.scheduler.serialize import (
    load_schedule_json,
    save_schedule_json,
)
from repro.solver.scheduled import scheduled_sptrsv
from repro.solver.sptrsv import forward_substitution
from repro.utils.timing import Timer

__all__ = ["main", "build_parser"]


def _add_topology_args(p) -> None:
    """Shared ``serve``/``loadgen`` flags describing the gateway."""
    p.add_argument("--shards", type=int, default=2,
                   help="number of SolveService shards (default 2)")
    p.add_argument("--systems", type=int, default=4,
                   help="registered demo systems, named so they "
                        "balance across the shards (default 4)")
    p.add_argument("--matrix", default=None,
                   help="Matrix Market file registered under every "
                        "system key (default: the built-in serving "
                        "corpus)")
    p.add_argument("--max-batch", type=int, default=64,
                   help="largest coalesced micro-batch (default 64)")
    p.add_argument("--max-queue", type=int, default=None,
                   help="per-shard admission bound (default "
                        "unbounded); overflow raises AdmissionError")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-request deadline in seconds (default "
                        "none); missed deadlines fail with "
                        "DeadlineExceededError")


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Efficient parallel scheduling for sparse triangular solvers "
            "(IPDPS 2025 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="compute a schedule for a matrix")
    p.add_argument("--matrix", required=True, help="Matrix Market file "
                   "(lower triangle is used)")
    p.add_argument("--scheduler", default="growlocal",
                   choices=available_schedulers())
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--output", help="write the schedule as JSON here")

    p = sub.add_parser("solve", help="solve L x = b with a schedule")
    p.add_argument("--matrix", required=True)
    p.add_argument("--schedule", help="JSON schedule (default: serial)")
    p.add_argument("--rhs", help="right-hand side as a .npy file "
                   "(default: all ones)")
    p.add_argument("--output", help="write the solution as .npy here")

    p = sub.add_parser("simulate",
                       help="simulate a schedule on a machine model")
    p.add_argument("--matrix", required=True)
    p.add_argument("--schedule", required=True)
    p.add_argument("--machine", default="intel_xeon_6238t",
                   choices=list_machines())

    p = sub.add_parser("compare",
                       help="run all schedulers on one matrix")
    p.add_argument("--matrix", required=True)
    p.add_argument("--cores", type=int, default=22)
    p.add_argument("--machine", default="intel_xeon_6238t",
                   choices=list_machines())
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON instead of a table")

    p = sub.add_parser(
        "suite",
        help="dataset x scheduler sweep, optionally sharded across "
             "worker processes",
    )
    p.add_argument("--dataset", default="narrow_band",
                   help="dataset name (see 'repro datasets')")
    p.add_argument("--schedulers", default="growlocal,funnel+gl,hdagg",
                   help="comma-separated scheduler names")
    p.add_argument("--machine", default="intel_xeon_6238t",
                   choices=list_machines())
    p.add_argument("--cores", type=int, default=None,
                   help="cores to schedule for (default: machine cores)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes sharding the instances "
                        "(1 = run in-process)")
    p.add_argument("--limit", type=int, default=None,
                   help="only the first K instances of the dataset")
    p.add_argument("--obs-dir", default=None,
                   help="enable observability for this run and drop "
                        "the metrics snapshot + trace JSONL here "
                        "(readable with 'repro obs report --dir ...')")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON instead of a table")

    p = sub.add_parser(
        "tune",
        help="autotune the scheduler per instance; write/read tuning "
             "profiles",
    )
    p.add_argument("--dataset", default="narrow_band",
                   help="dataset name (see 'repro datasets')")
    p.add_argument("--machine", default="intel_xeon_6238t",
                   choices=list_machines())
    p.add_argument("--cores", type=int, default=None,
                   help="cores to tune for (default: machine cores)")
    p.add_argument("--schedulers", default=None,
                   help="comma-separated candidate pool (default: "
                        "growlocal,funnel+gl,hdagg,wavefront; the "
                        "serial baseline is always ranked)")
    p.add_argument("--limit", type=int, default=None,
                   help="only the first K instances of the dataset")
    p.add_argument("--expected-solves", type=float, default=1000.0,
                   help="solves expected to reuse each decision "
                        "(weights scheduling cost, Eq. 7.1)")
    p.add_argument("--budget-s", type=float, default=0.25,
                   help="measured racing budget per instance, seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mode", choices=["measured", "simulated"],
                   default="measured",
                   help="race on wall-clock micro-runs (measured) or "
                        "deterministic cost-model seconds (simulated)")
    p.add_argument("--profile",
                   help="warm-start from this profile JSON (entries "
                        "with matching features skip racing); cold "
                        "runs append training observations and the "
                        "updated profile is written back here unless "
                        "--output says otherwise")
    p.add_argument("--output",
                   help="write the updated profile JSON here "
                        "(default: the --profile path when given)")
    p.add_argument("--store",
                   help="observation-store directory receiving this "
                        "run's training observations (default: the "
                        "profile's '<path>.store' sidecar when a "
                        "profile is involved; in-memory otherwise); "
                        "legacy v2 inline profile observations are "
                        "migrated into it")
    p.add_argument("--prior", choices=["cost", "learned"],
                   default=None,
                   help="candidate-ranking prior: one cost-model "
                        "simulation per candidate (cost, default) or "
                        "one model inference per candidate with "
                        "per-candidate cost-model fallback (learned; "
                        "implied by --model unless --train is given — "
                        "pass --prior learned explicitly to also rank "
                        "with the model being retrained)")
    p.add_argument("--model",
                   help="learned-prior model JSON: read it to rank "
                        "with the learned prior, or (with --train) "
                        "write the freshly trained model here")
    p.add_argument("--train", action="store_true",
                   help="after tuning, train the learned prior on the "
                        "profile's accumulated observations (of this "
                        "run's --mode) and write it to --model; with "
                        "--prior learned an existing --model file is "
                        "first used for ranking, then refreshed")
    p.add_argument("--min-samples", type=int, default=4,
                   help="learned prior: observations a per-scheduler "
                        "model needs before its predictions are "
                        "trusted (below: cost-model fallback)")
    p.add_argument("--max-std", type=float, default=0.75,
                   help="learned prior: largest admissible predictive "
                        "standard deviation, log space (above: "
                        "cost-model fallback)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON instead of a table")

    p = sub.add_parser(
        "store",
        help="fleet-wide observation store: merge, prune, stats, "
             "retrain",
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)

    ps = store_sub.add_parser(
        "stats", help="per-scheduler/per-regime coverage summary"
    )
    ps.add_argument("--store", required=True,
                    help="observation-store directory")
    ps.add_argument("--json", action="store_true",
                    help="machine-readable JSON instead of a table")

    ps = store_sub.add_parser(
        "merge",
        help="merge source stores into one (content dedup; each source "
             "record is read exactly once)",
    )
    ps.add_argument("--into", required=True,
                    help="destination store directory (created if "
                         "missing)")
    ps.add_argument("sources", nargs="+",
                    help="source store directories")
    ps.add_argument("--json", action="store_true",
                    help="machine-readable JSON instead of a summary "
                         "line")

    ps = store_sub.add_parser(
        "prune",
        help="thin the store to --keep records by feature-space "
             "coverage (farthest-point sampling per variant)",
    )
    ps.add_argument("--store", required=True,
                    help="observation-store directory")
    ps.add_argument("--keep", type=int, required=True,
                    help="records to keep at most")
    ps.add_argument("--json", action="store_true",
                    help="machine-readable JSON instead of a summary "
                         "line")

    ps = store_sub.add_parser(
        "retrain",
        help="refit the learned prior from the store when it is stale",
    )
    ps.add_argument("--store", required=True,
                    help="observation-store directory")
    ps.add_argument("--model", required=True,
                    help="write the refreshed model JSON here")
    ps.add_argument("--mode", choices=["measured", "simulated"],
                    default=None,
                    help="train on one measurement regime (default: "
                         "the store's majority regime, measured "
                         "winning ties)")
    ps.add_argument("--min-new", type=int, default=None,
                    help="new observations of the regime required "
                         "since the last retrain (default 100; a "
                         "never-trained regime is always stale)")
    ps.add_argument("--force", action="store_true",
                    help="retrain even when the staleness gate says "
                         "nothing changed")
    ps.add_argument("--json", action="store_true",
                    help="machine-readable JSON instead of a summary "
                         "line")

    p = sub.add_parser(
        "plans",
        help="persisted execution plans: save, load, ls, gc, verify "
             "(the PlanStore disk tier)",
    )
    plans_sub = p.add_subparsers(dest="plans_command", required=True)

    def _plans_system_args(pp) -> None:
        pp.add_argument("--matrix", required=True,
                        help="Matrix Market file (lower triangle is "
                             "used)")
        pp.add_argument("--schedule", default=None,
                        help="schedule JSON (default: the serial plan)")
        pp.add_argument("--scheduler", default=None,
                        choices=available_schedulers(),
                        help="compute the schedule with this scheduler "
                             "instead of loading --schedule")
        pp.add_argument("--cores", type=int, default=8,
                        help="cores for --scheduler (default 8)")
        pp.add_argument("--fuse-threshold", type=int, default=None,
                        help="fusion threshold for the plan key/compile "
                             "(default: REPRO_FUSE_THRESHOLD or the "
                             "library default)")

    pp = plans_sub.add_parser(
        "save",
        help="compile a plan and persist it as a store artifact "
             "(first writer wins; already-present keys are a no-op)",
    )
    pp.add_argument("--store", required=True,
                    help="plan-store directory (created if missing)")
    _plans_system_args(pp)
    pp.add_argument("--json", action="store_true",
                    help="machine-readable JSON instead of a summary "
                         "line")

    pp = plans_sub.add_parser(
        "load",
        help="load a persisted plan through the full integrity gate "
             "(exit 0 on a verified hit, 1 on miss/rejection)",
    )
    pp.add_argument("--store", required=True,
                    help="plan-store directory")
    _plans_system_args(pp)
    pp.add_argument("--json", action="store_true",
                    help="machine-readable JSON instead of a summary "
                         "line")

    pp = plans_sub.add_parser(
        "ls", help="list the store's artifacts (key, size, toolchain)"
    )
    pp.add_argument("--store", required=True,
                    help="plan-store directory")
    pp.add_argument("--json", action="store_true",
                    help="machine-readable JSON instead of a table")

    pp = plans_sub.add_parser(
        "gc",
        help="evict least-recently-used artifacts beyond the byte "
             "budget and clear leftover writer locks",
    )
    pp.add_argument("--store", required=True,
                    help="plan-store directory")
    pp.add_argument("--max-bytes", type=int, default=None,
                    help="byte budget (default: the store's "
                         "REPRO_PLAN_STORE_MAX_BYTES bound)")
    pp.add_argument("--json", action="store_true",
                    help="machine-readable JSON instead of a summary "
                         "line")

    pp = plans_sub.add_parser(
        "verify",
        help="run the full load gate over every artifact; exit 1 when "
             "any artifact is flagged",
    )
    pp.add_argument("--store", required=True,
                    help="plan-store directory")
    pp.add_argument("--json", action="store_true",
                    help="machine-readable JSON report (what CI "
                         "archives)")

    p = sub.add_parser("generate", help="generate a test matrix")
    p.add_argument("--kind", required=True,
                   choices=["erdos_renyi", "narrow_band", "grid2d",
                            "rcm_mesh"])
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--p", type=float, default=1e-3)
    p.add_argument("--band", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", required=True)

    p = sub.add_parser("datasets", help="show dataset statistics")
    p.add_argument("--name", default="narrow_band")

    sub.add_parser("machines", help="list machine presets")

    p = sub.add_parser(
        "bench",
        help="run the micro-benchmark suites (per-backend perf floors)",
    )
    p.add_argument("--suite", default="exec",
                   choices=["exec", "service", "serving", "tuner",
                            "plan_store", "all"],
                   help="which micro-benchmark suite to run")
    p.add_argument("--smoke", action="store_true",
                   help="shrunk instances (CI-sized; floors stay on)")
    p.add_argument("--report", action="store_true",
                   help="also run the warm-start checks (persistent "
                        "JIT, and the plan store when its suite is "
                        "selected): the second process must perform "
                        "zero compiles")
    p.add_argument("--output", default=None,
                   help="write BENCH_<suite>.json files into this "
                        "directory")
    p.add_argument("--obs-dir", default=None,
                   help="enable observability for this run and drop "
                        "the metrics snapshot + trace JSONL here")
    p.add_argument("--json", action="store_true",
                   help="print results as JSON instead of tables")

    p = sub.add_parser(
        "serve",
        help="bring up a sharded serving gateway over a demo corpus "
             "and drain an interleaved backlog through it",
    )
    _add_topology_args(p)
    p.add_argument("--requests", type=int, default=1_000,
                   help="backlog size drained round-robin across the "
                        "registered systems (default 1000)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON instead of tables")

    p = sub.add_parser(
        "loadgen",
        help="open-loop traffic (Poisson arrivals, Zipf skew, burst "
             "phases) against a sharded gateway; reports p50/p90/p99",
    )
    _add_topology_args(p)
    p.add_argument("--rate", type=float, default=500.0,
                   help="baseline arrival rate in requests/s "
                        "(default 500)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="baseline phase length in seconds (default 2)")
    p.add_argument("--burst-rate", type=float, default=None,
                   help="optional burst-phase arrival rate (rps)")
    p.add_argument("--burst-duration", type=float, default=0.5,
                   help="burst phase length in seconds (default 0.5)")
    p.add_argument("--zipf", type=float, default=1.0,
                   help="hot-key skew exponent (0 = uniform; "
                        "default 1.0)")
    p.add_argument("--seed", type=int, default=0,
                   help="schedule seed (arrivals + key choices)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON instead of tables")

    p = sub.add_parser(
        "obs",
        help="observability: percentile reports, trace tails and "
             "Prometheus export over a flushed obs directory",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    po = obs_sub.add_parser(
        "report",
        help="per-system latency/batch percentiles plus counters from "
             "a flushed metrics snapshot",
    )
    po.add_argument("--dir", default=None,
                    help="obs directory (default: $REPRO_OBS_DIR or "
                         ".repro-obs)")
    po.add_argument("--json", action="store_true",
                    help="machine-readable JSON instead of tables")

    po = obs_sub.add_parser(
        "tail", help="print the most recent trace events"
    )
    po.add_argument("--dir", default=None,
                    help="obs directory (default: $REPRO_OBS_DIR or "
                         ".repro-obs)")
    po.add_argument("-n", "--count", type=int, default=20,
                    help="events to show (default 20)")
    po.add_argument("--json", action="store_true",
                    help="machine-readable JSON instead of lines")

    po = obs_sub.add_parser(
        "export",
        help="Prometheus text exposition of the metrics snapshot",
    )
    po.add_argument("--dir", default=None,
                    help="obs directory (default: $REPRO_OBS_DIR or "
                         ".repro-obs)")
    po.add_argument("--output", default=None,
                    help="write the exposition text here instead of "
                         "stdout")
    po.add_argument("--json", action="store_true",
                    help="raw snapshot JSON instead of Prometheus text")

    p = sub.add_parser(
        "check",
        help="static analysis: lint repo invariants, verify plans",
    )
    p.add_argument("target", choices=["source", "plan", "all"],
                   help="source = AST lint of the library tree; plan = "
                        "static ExecutionPlan verification; all = both")
    p.add_argument("--path", action="append", default=None,
                   help="lint this file/directory instead of the "
                        "installed repro package (repeatable)")
    p.add_argument("--matrix", default=None,
                   help="verify the plan compiled from this .mtx file "
                        "instead of the built-in corpus")
    p.add_argument("--schedule", default=None,
                   help="schedule JSON to compile --matrix against")
    p.add_argument("--rules", action="store_true",
                   help="print the lint rule catalogue and exit")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON report (what CI archives)")

    return parser


def _load_lower(path: str):
    matrix = read_matrix_market(path)
    return matrix.lower_triangle()


def _cmd_schedule(args) -> int:
    lower = _load_lower(args.matrix)
    dag = DAG.from_lower_triangular(lower)
    scheduler = make_scheduler(args.scheduler)
    with Timer() as t:
        schedule = scheduler.schedule(dag, args.cores)
    schedule.validate(dag)
    wavefronts = critical_path_length(dag)
    print(f"matrix: n={lower.n}, nnz={lower.nnz}, "
          f"wavefronts={wavefronts}")
    print(f"schedule ({args.scheduler}, {args.cores} cores): "
          f"{schedule.n_supersteps} supersteps "
          f"({wavefronts / max(schedule.n_supersteps, 1):.2f}x barrier "
          f"reduction) in {t.elapsed:.3f}s")
    if args.output:
        save_schedule_json(schedule, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_solve(args) -> int:
    lower = _load_lower(args.matrix)
    b = (np.load(args.rhs) if args.rhs else np.ones(lower.n))
    if args.schedule:
        schedule = load_schedule_json(args.schedule)
        x = scheduled_sptrsv(lower, b, schedule)
    else:
        x = forward_substitution(lower, b)
    residual = float(np.linalg.norm(lower.matvec(x) - b))
    print(f"solved: ||L x - b|| = {residual:.3e}")
    if args.output:
        np.save(args.output, x)
        print(f"wrote {args.output}")
    return 0


def _cmd_simulate(args) -> int:
    lower = _load_lower(args.matrix)
    schedule = load_schedule_json(args.schedule)
    machine = get_machine(args.machine)
    sim = simulate_bsp(lower, schedule, machine)
    serial = simulate_serial(lower, machine)
    print(f"machine: {machine.name} ({schedule.n_cores} cores used)")
    print(f"serial:   {serial:.0f} cycles")
    print(f"parallel: {sim.total_cycles:.0f} cycles "
          f"(compute {sim.compute_cycles:.0f}, "
          f"barriers {sim.barrier_cycles:.0f})")
    print(f"speed-up: {serial / sim.total_cycles:.2f}x")
    return 0


def _json_sanitize(value):
    """Strict-JSON view of a result payload: non-finite floats (an
    infinite amortization) become null, containers recurse."""
    if isinstance(value, dict):
        return {k: _json_sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_sanitize(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


@contextmanager
def _obs_dir_scope(obs_dir: str | None):
    """Force the ``REPRO_OBS`` gate on for one CLI run (``--obs-dir``)
    and flush the metrics snapshot + trace into ``obs_dir`` afterwards.

    The gate is forced through the *environment* rather than
    :func:`repro.obs_gate.set_enabled`, so parallel-suite worker
    processes inherit it and contribute per-shard registries.  The
    previous environment value is always restored.
    """
    if not obs_dir:
        yield
        return
    from repro.obs_gate import OBS_ENV_VAR, get_obs

    previous = os.environ.get(OBS_ENV_VAR)
    os.environ[OBS_ENV_VAR] = "1"
    try:
        yield
        get_obs().flush(obs_dir)
    finally:
        if previous is None:
            os.environ.pop(OBS_ENV_VAR, None)
        else:
            os.environ[OBS_ENV_VAR] = previous


def _cmd_compare(args) -> int:
    from repro.experiments.datasets import DatasetInstance
    from repro.experiments.runner import run_instance
    from repro.experiments.tables import format_table

    lower = _load_lower(args.matrix)
    inst = DatasetInstance(args.matrix, lower)
    machine = get_machine(args.machine)
    rows = []
    results = []
    for name in available_schedulers():
        if name in ("serial", "auto"):
            # serial is the speed-up baseline; "auto" delegates to the
            # schedulers already in this comparison
            continue
        r = run_instance(inst, make_scheduler(name), machine,
                         n_cores=args.cores)
        results.append(r)
        rows.append([name, r.n_supersteps, f"{r.speedup:.2f}x",
                     f"{r.scheduling_seconds:.3f}s"])
    if args.json:
        print(json.dumps(_json_sanitize({
            "matrix": args.matrix,
            "machine": machine.name,
            "n": inst.n,
            "nnz": inst.nnz,
            "avg_wavefront": inst.avg_wavefront,
            "results": [r.as_row() for r in results],
        }), indent=2))
        return 0
    print(format_table(
        ["scheduler", "supersteps", "speed-up", "sched time"], rows,
        title=f"{args.matrix}: n={inst.n}, nnz={inst.nnz}, "
              f"avg wf={inst.avg_wavefront:.0f}",
    ))
    return 0


def _cmd_suite(args) -> int:
    from repro.errors import ConfigurationError
    from repro.experiments.datasets import build_dataset
    from repro.experiments.parallel import run_suite_parallel
    from repro.experiments.runner import geomean_speedups
    from repro.experiments.tables import format_table
    from repro.utils.stats import geometric_mean

    instances = list(build_dataset(args.dataset))
    if args.limit is not None:
        instances = instances[: args.limit]
    if not instances:
        raise ConfigurationError(f"dataset {args.dataset!r} is empty")
    names = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    unknown = sorted(set(names) - set(available_schedulers()))
    if unknown:
        raise ConfigurationError(
            f"unknown schedulers {unknown}; available: "
            f"{available_schedulers()}"
        )
    schedulers = {name: make_scheduler(name) for name in names}
    machine = get_machine(args.machine)

    with _obs_dir_scope(args.obs_dir), Timer() as t:
        results = run_suite_parallel(
            instances, schedulers, machine,
            n_cores=args.cores, workers=args.workers,
        )

    geo = geomean_speedups(results)
    if args.json:
        print(json.dumps(_json_sanitize({
            "dataset": args.dataset,
            "machine": machine.name,
            "workers": args.workers,
            "n_instances": len(instances),
            "wall_seconds": t.elapsed,
            "geomean_speedup": geo,
            "results": {
                name: [r.as_row() for r in rs]
                for name, rs in results.items()
            },
        }), indent=2))
        return 0
    rows = []
    for name in names:
        rs = results[name]
        # amortization is inf where the parallel execution is not faster
        # than serial; the geomean is taken over the finite entries only
        finite = [r.amortization for r in rs
                  if 0 < r.amortization < float("inf")]
        rows.append([
            name,
            f"{geo[name]:.2f}x",
            f"{geometric_mean([max(r.n_supersteps, 1) for r in rs]):.0f}",
            f"{sum(r.scheduling_seconds for r in rs):.3f}s",
            f"{geometric_mean(finite):.0f}" if finite else "-",
        ])
    any_result = results[names[0]][0]
    print(format_table(
        ["scheduler", "geomean speed-up", "geo supersteps",
         "sched time", "geo amortization"],
        rows,
        title=f"suite: {args.dataset} ({len(instances)} instances, "
              f"{machine.name}, {args.workers} worker(s))",
    ))
    print(f"wall time {t.elapsed:.2f}s; plan cache: "
          f"{any_result.plan_cache_hits} hits, "
          f"{any_result.plan_cache_misses} misses across all workers")
    return 0


def _cmd_tune(args) -> int:
    from repro.errors import ConfigurationError
    from repro.exec import PlanCache
    from repro.experiments.datasets import build_dataset
    from repro.experiments.tables import format_table
    from repro.tuner import (
        Autotuner,
        LearnedTunerModel,
        TuningProfile,
        load_profile,
        save_model,
        save_profile,
    )

    instances = list(build_dataset(args.dataset))
    if args.limit is not None:
        instances = instances[: args.limit]
    if not instances:
        raise ConfigurationError(f"dataset {args.dataset!r} is empty")
    machine = get_machine(args.machine)

    candidates = None
    if args.schedulers:
        candidates = [s.strip() for s in args.schedulers.split(",")
                      if s.strip()]
        allowed = set(available_schedulers()) - {"auto"}
        unknown = sorted(set(candidates) - allowed)
        if unknown:
            raise ConfigurationError(
                f"unknown/ineligible candidate schedulers {unknown}; "
                f"available: {sorted(allowed)}"
            )

    if args.train and not args.model:
        raise ConfigurationError(
            "--train needs --model PATH to write the trained model to"
        )
    prior = args.prior
    load_model_path = None
    if args.model and not args.train:
        load_model_path = args.model
        if prior is None:
            prior = "learned"  # a model to read implies the learned prior
    elif args.model and args.train and prior == "learned" \
            and os.path.exists(args.model):
        # an explicit learned-prior run that also retrains: rank with
        # the existing model, then overwrite it with the refreshed fit
        load_model_path = args.model
    if prior is None:
        prior = "cost"
    if load_model_path and prior != "learned":
        raise ConfigurationError(
            "--model (without --train) requires --prior learned"
        )

    from repro.store import ObservationStore

    profile = (load_profile(args.profile) if args.profile
               else TuningProfile(machine=machine.name))
    # the training data-plane: an explicit --store, or the profile's
    # sidecar directory; a run with neither keeps observations in the
    # profile's legacy inline list (in-memory only)
    profile_out = args.output or args.profile
    store_path = args.store or (
        f"{profile_out}.store" if profile_out else None
    )
    store = ObservationStore(store_path) if store_path else None
    migrated = 0
    if store is not None and profile.observations:
        # a v2 profile's inline observations migrate into the store
        # (content dedup makes repeated migrations idempotent); the
        # profile is saved back as a thin v3 decision cache below
        migrated = store.ingest(profile.take_observations())
    tuner = Autotuner(
        candidates=candidates,
        expected_solves=args.expected_solves,
        budget_seconds=args.budget_s,
        seed=args.seed,
        mode=args.mode,
        prior=prior,
        model=load_model_path,
        max_prediction_std=args.max_std,
        min_prediction_samples=args.min_samples,
    )
    cache = PlanCache()
    with Timer() as t:
        decisions = [
            tuner.tune(inst, machine, n_cores=args.cores,
                       plan_cache=cache, profile=profile, store=store)
            for inst in instances
        ]
    # without an explicit --output the updated profile (decisions) is
    # written back to --profile, so the accumulate-then---train
    # workflow never silently drops data; observations persist in the
    # store (flushed atomically into this run's shard)
    if store is not None:
        store.flush()
    if profile_out:
        save_profile(profile, profile_out)
    n_observations = (len(store) if store is not None
                      else profile.n_observations)

    trained = None
    if args.train:
        # restrict training to this run's measurement regime so
        # simulated and wall-clock targets never pool into one model;
        # the store is the training source — the inline profile list
        # only serves runs without any store
        trained = LearnedTunerModel.fit(
            store if store is not None else profile.observations,
            mode=args.mode,
        )
        if len(trained) == 0 and os.path.exists(args.model):
            raise ConfigurationError(
                f"the training store yielded no fittable models (too "
                f"few {args.mode!r}-mode observations); refusing to "
                f"overwrite the existing model {args.model} with an "
                f"empty one — accumulate more observations via "
                f"--store/--profile first"
            )
        save_model(trained, args.model)

    warm = sum(1 for d in decisions if d.source == "profile")
    learned_stats = (
        {
            "n_predicted": tuner.learned_prior.n_predicted,
            "n_fallback": tuner.learned_prior.n_fallback,
        }
        if tuner.learned_prior is not None
        else None
    )
    if args.json:
        payload = {
            "dataset": args.dataset,
            "machine": machine.name,
            "mode": args.mode,
            "prior": prior,
            "seed": args.seed,
            "wall_seconds": t.elapsed,
            "warm_starts": warm,
            "races_run": tuner.races_run,
            "n_observations": n_observations,
            "store": store.path if store is not None else None,
            "migrated_observations": migrated,
            "learned_prior": learned_stats,
            "decisions": [d.as_dict() for d in decisions],
        }
        if trained is not None:
            payload["trained"] = {
                "model": args.model,
                "schedulers": trained.schedulers,
                "n_samples": {name: trained.n_samples(name)
                              for name in trained.schedulers},
            }
        print(json.dumps(_json_sanitize(payload), indent=2))
        return 0

    rows = [
        [d.instance, d.scheduler, d.backend, d.max_batch,
         f"{d.predicted_speedup:.2f}x",
         "-" if not math.isfinite(d.amortization)
         else f"{d.amortization:.0f}",
         d.source]
        for d in decisions
    ]
    print(format_table(
        ["instance", "scheduler", "backend", "max batch",
         "pred speed-up", "amortization", "source"],
        rows,
        title=f"tune: {args.dataset} ({len(instances)} instances, "
              f"{machine.name}, {args.mode})",
    ))
    line = (f"wall time {t.elapsed:.2f}s; {tuner.races_run} race(s), "
            f"{warm} warm start(s) from profile")
    if learned_stats is not None:
        line += (f"; learned prior: {learned_stats['n_predicted']} "
                 f"predicted, {learned_stats['n_fallback']} fell back")
    print(line)
    if profile_out:
        print(f"wrote {profile_out}")
    if store is not None:
        print(f"store {store.path}: {n_observations} observation(s)"
              + (f", {migrated} migrated from the profile"
                 if migrated else ""))
    elif profile.n_observations:
        print(f"{profile.n_observations} in-memory observation(s) "
              f"(pass --store to persist them)")
    if trained is not None:
        print(f"wrote {args.model} (models for: "
              f"{', '.join(trained.schedulers) or 'nothing — store empty'})")
    return 0


def _cmd_store(args) -> int:
    from repro.errors import ConfigurationError
    from repro.store import ObservationStore

    if args.store_command == "stats":
        store = ObservationStore(args.store, create=False)
        stats = store.stats()
        if args.json:
            print(json.dumps(_json_sanitize(stats), indent=2))
            return 0
        from repro.experiments.tables import format_table

        rows = []
        for name, entry in sorted(stats["schedulers"].items()):
            for mode, regime in sorted(entry["regimes"].items()):
                rows.append([
                    name, mode or "-", regime["n"],
                    regime["reordered"], regime["unique_features"],
                ])
        print(format_table(
            ["scheduler", "regime", "records", "reordered",
             "unique features"],
            rows,
            title=f"store: {args.store} "
                  f"({stats['n_observations']} observation(s), "
                  f"{stats['n_shards']} shard(s), "
                  f"{len(stats['machines'])} machine(s))",
        ))
        return 0

    if args.store_command == "merge":
        dest = ObservationStore(args.into)
        result = dest.merge(args.sources)
        payload = {
            "into": dest.path,
            "sources": list(args.sources),
            **result.as_dict(),
            "n_observations": len(dest),
        }
        if args.json:
            print(json.dumps(_json_sanitize(payload), indent=2))
        else:
            print(f"merged {result.sources} store(s) into {dest.path}: "
                  f"{result.records_read} record(s) read, "
                  f"{result.added} added, "
                  f"{result.duplicates} duplicate(s) skipped")
        return 0

    if args.store_command == "prune":
        store = ObservationStore(args.store, create=False)
        result = store.prune(args.keep)
        payload = {"store": store.path, "keep": args.keep,
                   **result.as_dict()}
        if args.json:
            print(json.dumps(_json_sanitize(payload), indent=2))
        else:
            print(f"pruned {store.path}: {result.before} -> "
                  f"{result.after} record(s) "
                  f"({result.dropped} dropped by coverage thinning)")
        return 0

    if args.store_command == "retrain":
        store = ObservationStore(args.store, create=False)
        retrain_kwargs = {"mode": args.mode, "force": args.force}
        if args.min_new is not None:
            retrain_kwargs["min_new"] = args.min_new
        model = store.retrain(**retrain_kwargs)
        if model is not None and len(model) == 0 \
                and os.path.exists(args.model):
            raise ConfigurationError(
                f"the store yielded no fittable models (too few "
                f"observations per (scheduler, reordered) variant); "
                f"refusing to overwrite the existing model "
                f"{args.model} with an empty one"
            )
        if model is not None:
            from repro.tuner import save_model

            save_model(model, args.model)
        payload = {
            "store": store.path,
            "trained": model is not None,
            "mode": model.mode if model is not None else args.mode,
            "model": args.model if model is not None else None,
            "schedulers": model.schedulers if model is not None else [],
            "n_samples": (
                {name: model.n_samples(name)
                 for name in model.schedulers}
                if model is not None else {}
            ),
            "n_observations": len(store),
        }
        if args.json:
            print(json.dumps(_json_sanitize(payload), indent=2))
        elif model is None:
            print(f"store {store.path} is not stale "
                  f"(--force to retrain anyway)")
        else:
            print(f"retrained from {store.path} "
                  f"({payload['n_observations']} observation(s), "
                  f"mode {model.mode}); wrote {args.model} "
                  f"(models for: "
                  f"{', '.join(model.schedulers) or 'nothing'})")
        return 0

    raise ConfigurationError(
        f"unknown store command {args.store_command!r}"
    )


def _plans_system(args):
    """The (lower matrix, schedule, scheduler label) a ``plans`` verb
    operates on: an explicit schedule JSON, a named scheduler run at
    ``--cores``, or the serial plan."""
    from repro.errors import ConfigurationError

    if args.schedule and args.scheduler:
        raise ConfigurationError(
            "--schedule and --scheduler are mutually exclusive"
        )
    lower = _load_lower(args.matrix)
    schedule = None
    label = None
    if args.schedule:
        schedule = load_schedule_json(args.schedule)
    elif args.scheduler:
        dag = DAG.from_lower_triangular(lower)
        schedule = make_scheduler(args.scheduler).schedule(dag, args.cores)
        label = args.scheduler
    return lower, schedule, label


def _cmd_plans(args) -> int:
    from repro.errors import ConfigurationError
    from repro.store import PlanStore, plan_store_key

    if args.plans_command == "save":
        from repro.exec import compile_plan

        lower, schedule, label = _plans_system(args)
        store = PlanStore(args.store)
        key = plan_store_key(
            lower, schedule, scheduler=label,
            fuse_threshold=args.fuse_threshold,
        )
        plan = compile_plan(
            lower, schedule, fuse_threshold=args.fuse_threshold,
            check_diagonal=False,
        )
        path = store.save(plan, key)
        payload = {
            "store": store.path,
            "key": key.as_dict(),
            "stem": key.stem(),
            "saved": path is not None,
            "artifact": path,
            "n": plan.n,
        }
        if args.json:
            print(json.dumps(_json_sanitize(payload), indent=2))
        elif path is None:
            print(f"plan {key.stem()} already persisted in {store.path}")
        else:
            print(f"saved plan {key.stem()} (n={plan.n}) to {path}")
        return 0

    if args.plans_command == "load":
        lower, schedule, label = _plans_system(args)
        store = PlanStore(args.store, create=False)
        key = plan_store_key(
            lower, schedule, scheduler=label,
            fuse_threshold=args.fuse_threshold,
        )
        plan = store.get(key, matrix=lower, schedule=schedule)
        payload = {
            "store": store.path,
            "key": key.as_dict(),
            "stem": key.stem(),
            "hit": plan is not None,
            "rejected": store.rejects > 0,
            "reject_reason": store.last_reject,
            "n": plan.n if plan is not None else None,
            "provenance": plan.provenance if plan is not None else None,
        }
        if args.json:
            print(json.dumps(_json_sanitize(payload), indent=2))
        elif plan is not None:
            print(f"loaded plan {key.stem()} (n={plan.n}, verified) "
                  f"from {store.path}")
        elif store.last_reject:
            print(f"plan {key.stem()} rejected: {store.last_reject}")
        else:
            print(f"no plan artifact {key.stem()} in {store.path}")
        return 0 if plan is not None else 1

    if args.plans_command == "ls":
        store = PlanStore(args.store, create=False)
        rows = store.ls()
        if args.json:
            print(json.dumps(_json_sanitize(
                {"store": store.path, "artifacts": rows}
            ), indent=2))
            return 0
        from repro.experiments.tables import format_table

        print(format_table(
            ["stem", "n", "cores", "fuse", "dtype", "bytes"],
            [
                [
                    row["stem"], row["n"],
                    (row["key"] or {}).get("cores", "-"),
                    (row["key"] or {}).get("fuse_threshold", "-"),
                    (row["key"] or {}).get("dtype", "-"),
                    row["bytes"],
                ]
                for row in rows
            ],
            title=f"plan store: {store.path} ({len(rows)} artifact(s))",
        ))
        return 0

    if args.plans_command == "gc":
        store = PlanStore(args.store, create=False)
        result = store.gc(args.max_bytes)
        if args.json:
            print(json.dumps(_json_sanitize(result), indent=2))
        else:
            print(f"gc {store.path}: {result['bytes_before']} -> "
                  f"{result['bytes_after']} byte(s), "
                  f"{len(result['removed'])} artifact(s) evicted")
        return 0

    if args.plans_command == "verify":
        store = PlanStore(args.store, create=False)
        report = store.verify()
        if args.json:
            print(json.dumps(_json_sanitize(report), indent=2))
        else:
            for verdict in report["artifacts"]:
                status = ("ok" if verdict["ok"]
                          else f"BAD ({verdict['error_type']}: "
                               f"{verdict['error']})")
                print(f"{verdict['stem']}: {status}")
            print(f"{report['n_artifacts']} artifact(s), "
                  f"{report['n_bad']} flagged")
        return 0 if report["ok"] else 1

    raise ConfigurationError(
        f"unknown plans command {args.plans_command!r}"
    )


def _cmd_generate(args) -> int:
    from repro.matrix.generators import (
        erdos_renyi_lower,
        grid_laplacian_2d,
        narrow_band_lower,
        rcm_mesh,
    )

    if args.kind == "erdos_renyi":
        matrix = erdos_renyi_lower(args.n, args.p, seed=args.seed)
    elif args.kind == "narrow_band":
        matrix = narrow_band_lower(args.n, args.p, args.band,
                                   seed=args.seed)
    elif args.kind == "grid2d":
        side = max(int(round(args.n ** 0.5)), 1)
        matrix = grid_laplacian_2d(side, side)
    else:  # rcm_mesh
        width = max(int(round(args.n ** 0.5)), 1)
        levels = max(args.n // width, 1)
        matrix = rcm_mesh(levels, width, reach=1, lateral_prob=0.3,
                          seed=args.seed)
    write_matrix_market(matrix, args.output,
                        comment=f"generated: {args.kind}")
    print(f"wrote {args.output}: n={matrix.n}, nnz={matrix.nnz}")
    return 0


def _cmd_datasets(args) -> int:
    from repro.experiments.datasets import dataset_statistics
    from repro.experiments.tables import format_table

    stats = dataset_statistics(args.name)
    rows = [[s["matrix"], s["size"], s["nnz"], s["avg_wavefront"]]
            for s in stats]
    print(format_table(["matrix", "size", "#non-zeros", "avg wf"], rows,
                       title=f"dataset: {args.name}"))
    return 0


def _cmd_machines(_args) -> int:
    for name in list_machines():
        m = get_machine(name)
        print(f"{name}: {m.n_cores} cores, barrier {m.barrier_latency:.0f} "
              f"cycles, miss {m.miss_penalty:.0f} cycles, "
              f"{m.clock_ghz} GHz")
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro.experiments import bench as bench_lib
    from repro.experiments.tables import format_table

    runners = {
        "exec": bench_lib.bench_exec,
        "service": bench_lib.bench_service,
        "serving": bench_lib.bench_serving,
        "tuner": bench_lib.bench_tuner,
        "plan_store": bench_lib.bench_plan_store,
    }
    suites = tuple(runners) if args.suite == "all" else (args.suite,)
    with _obs_dir_scope(args.obs_dir):
        results = {
            name: runners[name](smoke=args.smoke) for name in suites
        }

        warm = None
        plan_warm = None
        if args.report:
            warm = bench_lib.warm_start_check()
            results["warm_start"] = warm
            if "plan_store" in suites:
                plan_warm = bench_lib.plan_store_warm_start_check()
                results["plan_store_warm_start"] = plan_warm

    # run provenance: one meta block per payload, so a BENCH_*.json is
    # attributable to a machine/toolchain/commit across the trajectory
    meta = bench_lib.run_meta()
    for payload in results.values():
        payload["meta"] = meta

    if args.output:
        outdir = Path(args.output)
        outdir.mkdir(parents=True, exist_ok=True)
        for name, payload in results.items():
            path = outdir / f"BENCH_{name}.json"
            path.write_text(
                json.dumps(_json_sanitize(payload), indent=2) + "\n"
            )
            print(f"wrote {path}")

    if args.json:
        print(json.dumps(_json_sanitize(results), indent=2))
    else:
        for name in suites:
            payload = results[name]
            if name == "exec":
                tiers = ["serial-loop", "numpy", "numba",
                         "numba-parallel", "fused"]
                rows = [
                    [shape, meta["n"], meta["n_batches"]]
                    + [
                        "-" if meta["seconds"][t] is None
                        else f"{meta['seconds'][t]:.5f}"
                        for t in tiers
                    ]
                    for shape, meta in payload["shapes"].items()
                ]
                print(format_table(
                    ["shape", "n", "batches"] + [f"{t} s" for t in tiers],
                    rows,
                    title=f"exec micro-benchmark (auto backend: "
                          f"{payload['auto_backend']})",
                ))
            else:
                for key, value in payload.items():
                    print(f"{name}.{key}: {value}")
        if warm is not None:
            for key, value in warm.items():
                print(f"warm_start.{key}: {value}")
        if plan_warm is not None:
            for key, value in plan_warm.items():
                print(f"plan_store_warm_start.{key}: {value}")

    if warm is not None and not warm.get("skipped"):
        if not warm.get("warm_zero_compiles"):
            print(
                "error: persistent-JIT warm-start check failed: the "
                "second process recompiled "
                f"{warm['second_process']['compiles']} signature(s)",
                file=sys.stderr,
            )
            return 3
    if plan_warm is not None and not plan_warm.get("skipped"):
        if not plan_warm.get("warm_zero_compiles"):
            print(
                "error: plan-store warm-start check failed: the second "
                "process compiled "
                f"{plan_warm['second_process']['compiles']} plan(s) "
                "instead of loading them",
                file=sys.stderr,
            )
            return 3
    return 0


def _serving_target(args):
    """Build the gateway + demo corpus behind ``serve``/``loadgen``.

    Returns ``(gateway, keys, rhs)``: an open
    :class:`~repro.service.ServingGateway` with ``args.systems``
    registered systems whose keys balance across ``args.shards``
    shards, and a seeded RHS per key.  The caller owns ``close()``.
    """
    from repro.errors import ConfigurationError
    from repro.experiments.bench import _serving_corpus
    from repro.service import ServingGateway, pick_balanced_keys

    if args.shards < 1:
        raise ConfigurationError(
            f"--shards must be >= 1, got {args.shards}"
        )
    if args.systems < 1:
        raise ConfigurationError(
            f"--systems must be >= 1, got {args.systems}"
        )
    matrix = (
        _load_lower(args.matrix)
        if args.matrix
        else _serving_corpus(smoke=True)
    )
    keys = pick_balanced_keys(args.systems, args.shards)
    rng = np.random.default_rng(17)
    rhs = {key: rng.standard_normal(matrix.n) for key in keys}
    gateway = ServingGateway(
        args.shards,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
    )
    try:
        for key in keys:
            gateway.register(key, matrix)
    except BaseException:
        gateway.close(wait=False)
        raise
    return gateway, keys, rhs


def _cmd_serve(args) -> int:
    """``repro serve``: stand up a topology and drain a backlog."""
    from repro.experiments.tables import format_table
    from repro.service.loadgen import saturation_throughput

    gateway, keys, rhs = _serving_target(args)
    try:
        result = saturation_throughput(
            gateway, keys, rhs, args.requests
        )
        shard_stats = gateway.shard_stats()
    finally:
        gateway.close()

    payload = {
        "n_shards": args.shards,
        "n_systems": len(keys),
        "throughput_rps": result["throughput_rps"],
        "elapsed_s": result["elapsed_s"],
        "n_requests": int(result["n_requests"]),
        "shards": [
            {str(key): stats.as_row() for key, stats in per_shard.items()}
            for per_shard in shard_stats
        ],
    }
    if args.json:
        print(json.dumps(_json_sanitize(payload), indent=2))
        return 0
    rows = []
    for shard, per_shard in enumerate(shard_stats):
        for key, stats in sorted(
            per_shard.items(), key=lambda item: str(item[0])
        ):
            rows.append([
                shard, key, stats.n_requests,
                f"{stats.avg_batch_size:.1f}",
                f"{stats.avg_latency_seconds * 1e3:.3f}",
                f"{stats.avg_queue_wait_seconds * 1e3:.3f}",
            ])
    print(format_table(
        ["shard", "system", "requests", "avg batch", "avg lat ms",
         "avg wait ms"],
        rows,
        title=f"serve: {args.shards} shard(s), "
              f"{payload['throughput_rps']:.0f} req/s sustained",
    ))
    return 0


def _cmd_loadgen(args) -> int:
    """``repro loadgen``: open-loop traffic against a gateway."""
    from repro.service.loadgen import (
        BurstPhase,
        LoadgenConfig,
        run_loadgen,
    )

    phases = [BurstPhase(args.rate, args.duration)]
    if args.burst_rate is not None:
        phases.append(BurstPhase(args.burst_rate, args.burst_duration))
    config = LoadgenConfig(
        phases=tuple(phases),
        zipf_s=args.zipf,
        seed=args.seed,
        timeout_s=args.timeout,
    )
    gateway, keys, rhs = _serving_target(args)
    try:
        report = run_loadgen(gateway, keys, rhs, config)
    finally:
        gateway.close()

    payload = report.as_dict()
    payload["n_shards"] = args.shards
    payload["n_systems"] = len(keys)
    if args.json:
        print(json.dumps(_json_sanitize(payload), indent=2))
        return 0
    print(f"loadgen: {args.shards} shard(s), {len(keys)} system(s), "
          f"zipf_s={args.zipf:g}, offered "
          f"{report.offered_rate_rps:.0f} req/s for "
          f"{report.duration_s:.2f}s")
    print(f"  requests: {report.n_requests} "
          f"(ok {report.n_ok}, rejected {report.n_admission_rejected}, "
          f"deadline-missed {report.n_deadline_missed}, "
          f"failed {report.n_failed})")
    print(f"  achieved: {report.achieved_rps:.0f} req/s")
    print(f"  latency:  p50 {report.latency_p50_s * 1e3:.3f}ms  "
          f"p90 {report.latency_p90_s * 1e3:.3f}ms  "
          f"p99 {report.latency_p99_s * 1e3:.3f}ms")
    print(f"  breakdown: queue-wait {report.total_queue_wait_s:.3f}s, "
          f"execute {report.total_execute_s:.3f}s")
    print(f"  balance:  per-shard completed {report.per_shard_requests}")
    if report.max_schedule_slip_s > 0:
        print(f"  schedule slip: up to "
              f"{report.max_schedule_slip_s * 1e3:.3f}ms behind "
              "the open-loop arrival plan")
    return 0


def _cmd_obs(args) -> int:
    """``repro obs report|tail|export``: read a flushed obs directory.

    Reading never requires the ``REPRO_OBS`` gate — the gate controls
    *instrumentation*; these verbs only load the ``metrics.json`` /
    ``trace.jsonl`` artifacts a gated run flushed.
    """
    from repro.experiments.tables import format_table
    from repro.obs import default_dir
    from repro.obs.export import load_dir, prometheus_text, report
    from repro.utils.atomic import atomic_write_text

    directory = args.dir if args.dir is not None else default_dir()
    snapshot, events = load_dir(directory)

    if args.obs_command == "report":
        payload = report(snapshot, events)
        if args.json:
            print(json.dumps(_json_sanitize(payload), indent=2))
            return 0
        rows = []
        for system, sections in sorted(payload["systems"].items()):
            latency = sections.get("latency", {})
            batch = sections.get("batch", {})

            def fmt(value, scale=1.0):
                return ("-" if value is None
                        else f"{float(value) * scale:.3f}")

            rows.append([
                system,
                latency.get("count", 0),
                fmt(latency.get("p50"), 1e3),
                fmt(latency.get("p95"), 1e3),
                fmt(latency.get("p99"), 1e3),
                fmt(batch.get("p50")),
                fmt(batch.get("p99")),
            ])
        print(format_table(
            ["system", "requests", "lat p50 ms", "lat p95 ms",
             "lat p99 ms", "batch p50", "batch p99"],
            rows,
            title=f"obs report ({directory})",
        ))
        for key, value in sorted(payload["counters"].items()):
            print(f"counter {key} = {value:g}")
        trace = payload.get("trace")
        if trace:
            print(f"trace: {trace['events']} event(s)")
        return 0

    if args.obs_command == "tail":
        tail = events[-max(int(args.count), 0):]
        if args.json:
            print(json.dumps(_json_sanitize(tail), indent=2))
            return 0
        for event in tail:
            tags = ",".join(
                f"{k}={v}" for k, v in sorted(event["tags"].items())
            )
            print(f"{event['ts']:.6f} {event['name']} "
                  f"span={event['span_id']} "
                  f"parent={event['parent_id']} "
                  f"dur={event['dur_s'] * 1e3:.3f}ms "
                  f"status={event['status']}"
                  + (f" {tags}" if tags else ""))
        return 0

    # export
    if args.json:
        print(json.dumps(_json_sanitize(snapshot), indent=2))
        return 0
    text = prometheus_text(snapshot)
    if args.output:
        atomic_write_text(args.output, text)
        print(f"wrote {args.output}")
        return 0
    print(text, end="")
    return 0


def _cmd_check(args) -> int:
    """``repro check source|plan|all``: the static-analysis gate.

    Exit 0 iff every requested half is clean; 1 on findings/violations
    (typed errors still exit 2 via ``main``).
    """
    from repro.analysis import check_all, check_plans, check_source
    from repro.analysis.lint import rule_catalogue
    from repro.experiments.tables import format_table

    if args.rules:
        catalogue = rule_catalogue()
        if args.json:
            print(json.dumps(_json_sanitize(catalogue), indent=2))
        else:
            print(format_table(
                ["id", "severity", "autofix", "description"],
                [[r["id"], r["severity"],
                  "yes" if r["autofixable"] else "no",
                  r["description"][:60]] for r in catalogue],
                title="lint rules",
            ))
        return 0

    if args.target == "source":
        payload = check_source(args.path)
    elif args.target == "plan":
        payload = check_plans(args.matrix, args.schedule)
    else:
        payload = check_all(args.path, args.matrix, args.schedule)

    if args.json:
        print(json.dumps(_json_sanitize(payload), indent=2))
    else:
        _print_check_report(args.target, payload)
    return 0 if payload["ok"] else 1


def _print_check_report(target: str, payload: dict) -> None:
    from repro.experiments.tables import format_table

    if target == "all":
        halves = [("source", payload["source"]), ("plan", payload["plan"])]
    else:
        halves = [(target, payload)]
    for name, half in halves:
        if name == "source":
            for finding in half["findings"]:
                print(f"{finding['path']}:{finding['line']}:"
                      f"{finding['col']}: [{finding['rule']}] "
                      f"{finding['message']}")
            verdict = "clean" if half["ok"] else (
                f"{half['n_findings']} finding(s)"
            )
            print(f"source: {verdict} "
                  f"({len(half['rules'])} rules)")
        else:
            rows = []
            for plan in half["plans"]:
                broken = sorted({
                    v["invariant"] for v in plan["violations"]
                })
                rows.append([
                    plan["plan"], plan["n"], plan["n_batches"],
                    "ok" if plan["ok"] else ", ".join(broken),
                ])
            print(format_table(
                ["plan", "n", "batches", "verdict"], rows,
                title="plan verification",
            ))
            verdict = "clean" if half["ok"] else "VIOLATIONS"
            print(f"plan: {verdict} ({half['n_plans']} plan(s), "
                  f"{len(half['invariants'])} invariants)")


_COMMANDS = {
    "schedule": _cmd_schedule,
    "solve": _cmd_solve,
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "suite": _cmd_suite,
    "tune": _cmd_tune,
    "store": _cmd_store,
    "plans": _cmd_plans,
    "generate": _cmd_generate,
    "datasets": _cmd_datasets,
    "machines": _cmd_machines,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "obs": _cmd_obs,
    "check": _cmd_check,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
