"""Statistical helpers used throughout the evaluation harness.

The paper aggregates per-matrix results with geometric means (Tables 7.1-7.7)
and reports interquartile ranges (Figure 1.2) and Dolan-More performance
profiles (Figure 7.1).  These helpers are the single implementation used by
both the test-suite and the benchmark harness.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "geometric_mean",
    "quartiles",
    "interquartile_range",
    "performance_profile",
]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values.

    Parameters
    ----------
    values:
        Non-empty sequence of positive numbers.

    Returns
    -------
    float
        ``exp(mean(log(values)))``, computed in log-space for stability.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("geometric_mean of empty sequence")
    if np.any(arr <= 0.0):
        raise ConfigurationError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def quartiles(values: Sequence[float]) -> tuple[float, float, float]:
    """Return ``(Q25, median, Q75)`` using linear interpolation.

    Matches the quartile convention of Table 7.6 in the paper.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("quartiles of empty sequence")
    q25, q50, q75 = np.percentile(arr, [25.0, 50.0, 75.0])
    return float(q25), float(q50), float(q75)


def interquartile_range(values: Sequence[float]) -> tuple[float, float]:
    """Return the ``(Q25, Q75)`` pair, the IQR band of Figure 1.2."""
    q25, _, q75 = quartiles(values)
    return q25, q75


def performance_profile(
    times_by_algorithm: dict[str, Sequence[float]],
    thresholds: Sequence[float] | None = None,
) -> dict[str, np.ndarray]:
    """Dolan-More performance profile (Figure 7.1).

    For each algorithm and each threshold ``tau``, computes the fraction of
    instances on which the algorithm's time is within ``tau`` times the best
    time achieved by *any* algorithm on that instance.

    Parameters
    ----------
    times_by_algorithm:
        Mapping from algorithm name to a sequence of per-instance times.
        All sequences must have the same length and positive entries.
    thresholds:
        Threshold values ``tau >= 1``.  Defaults to ``1.0, 1.1, ..., 5.0``.

    Returns
    -------
    dict
        ``{"thresholds": taus, name: fractions, ...}`` where ``fractions`` is
        an array of the same length as ``taus``.
    """
    if not times_by_algorithm:
        raise ConfigurationError("performance_profile needs >= 1 algorithm")
    lengths = {len(v) for v in times_by_algorithm.values()}
    if len(lengths) != 1:
        raise ConfigurationError("all algorithms need the same instance count")
    (n_instances,) = lengths
    if n_instances == 0:
        raise ConfigurationError("performance_profile needs >= 1 instance")

    taus = (
        np.arange(1.0, 5.01, 0.1)
        if thresholds is None
        else np.asarray(thresholds, dtype=np.float64)
    )
    if np.any(taus < 1.0):
        raise ConfigurationError("thresholds must be >= 1")

    matrix = np.vstack(
        [np.asarray(v, dtype=np.float64) for v in times_by_algorithm.values()]
    )
    if np.any(matrix <= 0):
        raise ConfigurationError("performance_profile requires positive times")
    best = matrix.min(axis=0)  # per-instance best over all algorithms

    out: dict[str, np.ndarray] = {"thresholds": taus}
    for name, row in zip(times_by_algorithm, matrix, strict=True):
        ratios = row / best
        out[name] = np.array([(ratios <= t).mean() for t in taus])
    return out
