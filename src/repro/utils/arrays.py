"""Shared flat-array indexing helpers.

The segmented gather — "for each segment ``i``, the consecutive indices
``starts[i] .. starts[i] + counts[i]``, concatenated" — underlies the
execution-plan compiler's gather layout, its level peel, and the cache
model's access streams.  One implementation keeps the subtle index
arithmetic in one place.
"""

from __future__ import annotations

import numpy as np

__all__ = ["segmented_gather"]


def segmented_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated index ranges ``[starts[i], starts[i] + counts[i])``.

    Fully vectorized: no per-segment Python loop.  Returns an empty array
    when all counts are zero.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    prefix = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=prefix[1:])
    return (np.repeat(starts, counts)
            + np.arange(total, dtype=np.int64)
            - np.repeat(prefix, counts))
