"""Shared utilities: statistics and timing helpers."""

from repro.utils.stats import (
    geometric_mean,
    interquartile_range,
    performance_profile,
    quartiles,
)
from repro.utils.timing import Timer

__all__ = [
    "geometric_mean",
    "interquartile_range",
    "performance_profile",
    "quartiles",
    "Timer",
]
