"""Wall-clock timing helper.

Scheduling-time measurements (amortization threshold, Table 7.6; scheduling
time scaling, Figure B.1) use real wall-clock time of the Python schedulers.
``Timer`` is a tiny context manager around :func:`time.perf_counter`.
"""

from __future__ import annotations

import time

from repro.errors import ReproError

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Re-entering (or restarting via :meth:`start`) resets the recorded
    value, and reading :attr:`elapsed` before the first exit/:meth:`stop`
    raises :class:`~repro.errors.ReproError` — a silently stale or zero
    reading would poison the measured amortization numbers downstream.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float | None = None

    @property
    def elapsed(self) -> float:
        """Seconds of the most recent completed measurement."""
        if self._elapsed is None:
            raise ReproError(
                "Timer.elapsed read before the timer was stopped; "
                "exit the 'with' block (or call stop()) first"
            )
        return self._elapsed

    def __enter__(self) -> "Timer":
        # re-entry starts a fresh measurement: the previous elapsed
        # value is discarded, never silently returned for the new run
        self._elapsed = None
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._start is None:
            raise ReproError(
                "Timer context exited without a running measurement"
            )
        self._elapsed = time.perf_counter() - self._start
        self._start = None

    def start(self) -> None:
        """Start (or restart) the timer, discarding any prior reading."""
        self._elapsed = None
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer, record and return the elapsed time."""
        if self._start is None:
            raise ReproError("Timer.stop() called before start()")
        self._elapsed = time.perf_counter() - self._start
        self._start = None
        return self._elapsed
