"""Wall-clock timing helper.

Scheduling-time measurements (amortization threshold, Table 7.6; scheduling
time scaling, Figure B.1) use real wall-clock time of the Python schedulers.
``Timer`` is a tiny context manager around :func:`time.perf_counter`.
"""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None  # repro: allow[no-bare-assert]
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        """Start (or restart) the timer."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer, record and return the elapsed time."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed
