"""Atomic file writes: serialize, write a sibling temp file, rename.

Tuning profiles, learned-model files and observation-store shards are
all read back by later runs (often by *other* processes: suite workers,
services, CI steps).  A plain ``open(path, "w")`` truncates the target
before the first byte is written, so a crash mid-``json.dump`` — or two
workers racing — leaves a torn file that poisons every future warm
start.  Every persisted artifact therefore goes through
:func:`atomic_write_text`: the full content is materialized first, lands
in a temp file *in the same directory* (same filesystem, so the rename
is atomic), and :func:`os.replace` swaps it in.  Readers observe either
the previous complete file or the new one, never a prefix.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["atomic_write_json", "atomic_write_text"]


def atomic_write_text(
    path: str | os.PathLike, text: str, *, encoding: str = "utf-8"
) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    On any failure the temp file is removed and the previous content of
    ``path`` is left untouched.

    Examples
    --------
    >>> import os, tempfile
    >>> from repro.utils.atomic import atomic_write_text
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     target = os.path.join(tmp, "out.txt")
    ...     atomic_write_text(target, "payload\\n")
    ...     open(target).read()
    'payload\\n'
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_json(
    payload: object,
    path: str | os.PathLike,
    *,
    indent: int | None = 2,
    sort_keys: bool = True,
) -> None:
    """Serialize ``payload`` and write it atomically.

    Serialization happens *before* the temp file is opened: an
    unserializable payload raises without a single byte reaching the
    filesystem, so the previous good file survives even the earliest
    failure mode.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_text(path, text)
