"""Zero-overhead gate in front of the observability subsystem.

Observability (:mod:`repro.obs`) is strictly opt-in, mirroring the
``REPRO_VALIDATE_PLANS`` discipline of the plan verifier: with the
``REPRO_OBS`` environment gate off, ``import repro`` must not import
the subsystem and instrumented call sites must pay nothing beyond one
environment read.  Every instrumented module therefore goes through
this tiny facade instead of importing :mod:`repro.obs` directly::

    from repro.obs_gate import get_obs

    obs = get_obs()          # None when the gate is off
    if obs is not None:
        with obs.span("exec.compile", n=matrix.n):
            ...

The gate is also what the ``direct-timing-in-hot-path`` lint rule
(:mod:`repro.analysis.lint`) points hot-path modules at: wall-clock
reads in ``repro/exec/`` are forbidden outright, so any timing there
must run behind ``get_obs()`` — making "disabled means free" a property
the linter can enforce, not a convention.

``REPRO_OBS_DIR`` names the directory snapshots and traces are flushed
to (default ``.repro-obs``); see :func:`repro.obs.flush`.
"""

from __future__ import annotations

import os

__all__ = ["OBS_DIR_ENV_VAR", "OBS_ENV_VAR", "get_obs", "obs_enabled",
           "set_enabled"]

#: Environment gate: truthy values enable the subsystem.
OBS_ENV_VAR = "REPRO_OBS"

#: Directory metrics snapshots and trace JSONL files are flushed to.
OBS_DIR_ENV_VAR = "REPRO_OBS_DIR"

_TRUTHY = frozenset(("1", "true", "yes", "on"))

#: Programmatic override (``repro suite --obs-dir`` and tests):
#: ``None`` defers to the environment, a bool wins outright.
_FORCED: bool | None = None


def obs_enabled() -> bool:
    """Whether observability is on (override first, then ``REPRO_OBS``).

    Examples
    --------
    >>> from repro.obs_gate import obs_enabled, set_enabled
    >>> set_enabled(True)
    >>> obs_enabled()
    True
    >>> set_enabled(None)  # back to the environment gate
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(OBS_ENV_VAR, "").strip().lower() in _TRUTHY


def get_obs():
    """The :mod:`repro.obs` module when the gate is on, else ``None``.

    The import happens lazily on the first enabled call, so the
    disabled path never loads the subsystem — the invariant the exec
    bench's zero-overhead floor pins down.
    """
    if not obs_enabled():
        return None
    import repro.obs as obs

    return obs


def set_enabled(value: bool | None) -> None:
    """Programmatically force the gate on/off; ``None`` restores the
    environment-driven default.  Used by ``--obs-dir`` CLI runs and
    tests; library code should prefer the environment gate."""
    global _FORCED
    _FORCED = value if value is None else bool(value)
