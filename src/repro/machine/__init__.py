"""Simulated parallel machine: cost models for SpTRSV execution.

This package substitutes the paper's physical testbeds (Section 6.3) with a
deterministic performance model, because the reproduction environment has a
single CPU core and CPython's GIL forbids measuring fine-grained thread
parallelism.  Every quantity the paper reports is a function of the
schedule and machine parameters:

* :mod:`~repro.machine.model` — machine presets (cores, per-nnz compute
  cost, barrier latency, cache geometry) for the Intel Xeon 6238T,
  AMD EPYC 7763 and Kunpeng 920 testbeds, scaled to the proxy problem
  sizes;
* :mod:`~repro.machine.cache` — a vectorized reuse-distance cache model
  that prices the locality effects Sections 3 and 5 rely on;
* :mod:`~repro.machine.bsp_sim` — synchronous (barrier) execution:
  ``sum_s max_p T(s, p) + barriers * L_arch``;
* :mod:`~repro.machine.async_sim` — event-driven asynchronous execution
  with point-to-point waits (SpMP's execution model);
* :mod:`~repro.machine.serial_sim` — the serial baseline.

All three simulators cost their workloads through the single plan-based
kernel of :mod:`repro.exec.cost`: schedules are lowered once by
:func:`repro.exec.compile_plan` and the resulting
:class:`~repro.exec.plan.ExecutionPlan` can be passed to any simulator
(and to the solvers) to amortize the lowering.
"""

from repro.machine.async_sim import AsyncSimResult, simulate_async
from repro.machine.bsp_sim import BSPSimResult, simulate_bsp
from repro.machine.cache import reuse_distance_misses, row_costs_for_sequence
from repro.machine.model import MachineModel, get_machine, list_machines
from repro.machine.serial_sim import simulate_serial
from repro.machine.trace import ExecutionTrace, render_gantt, trace_bsp

__all__ = [
    "ExecutionTrace",
    "render_gantt",
    "trace_bsp",
    "AsyncSimResult",
    "BSPSimResult",
    "MachineModel",
    "get_machine",
    "list_machines",
    "reuse_distance_misses",
    "row_costs_for_sequence",
    "simulate_async",
    "simulate_bsp",
    "simulate_serial",
]
