"""Machine models: the simulated counterparts of the paper's testbeds.

All times are in abstract *cycles*.  The parameters are calibrated so that
the *ratios* that drive the paper's evaluation match its testbeds at the
proxy problem sizes used here (Section 6.3 machines ran matrices roughly
20x larger; barrier latency is scaled by the same factor so that the
barrier-cost-to-total-work ratio of a wavefront schedule is preserved —
see EXPERIMENTS.md for the calibration note):

* per-row compute cost  ``row_overhead + cycles_per_nnz * nnz(row)``;
* cache misses cost ``miss_penalty`` each (reuse-distance model);
* a global barrier costs ``barrier_latency`` cycles (grows with core count
  in reality; presets encode the 22-core value and
  :meth:`MachineModel.barrier_cost` scales it mildly with active cores);
* asynchronous point-to-point synchronization costs ``p2p_latency`` per
  cross-core dependency wait plus ``p2p_check`` per flag check.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["MachineModel", "get_machine", "list_machines"]


@dataclass(frozen=True)
class MachineModel:
    """Parameters of a simulated shared-memory multicore.

    Attributes
    ----------
    name:
        Preset identifier.
    n_cores:
        Physical cores on one socket.
    cycles_per_nnz:
        Compute cycles per stored entry of a row (multiply + add + indexing).
    row_overhead:
        Fixed cycles per row (loop control, division by the diagonal).
    barrier_latency:
        Cycles per global synchronization barrier at 22 active cores.
    barrier_per_core:
        Additional barrier cycles per active core beyond one (tree/linear
        combining term).
    p2p_latency:
        Cycles a consumer waits after a cross-core producer finishes
        (cache-line transfer in the asynchronous model).
    p2p_check:
        Cycles per cross-core dependency flag check (busy-wait read).
    cache_lines:
        Per-core cache capacity in lines (reuse-distance window).
    line_elems:
        Matrix/vector elements per cache line (8 doubles in 64 bytes).
    miss_penalty:
        Cycles per cache miss (latency already overlapped with compute is
        excluded; this is the exposed stall).
    clock_ghz:
        Nominal clock, used only to convert simulated cycles to seconds for
        amortization thresholds.
    """

    name: str
    n_cores: int
    cycles_per_nnz: float = 2.0
    row_overhead: float = 6.0
    barrier_latency: float = 400.0
    barrier_per_core: float = 6.0
    p2p_latency: float = 60.0
    p2p_check: float = 8.0
    cache_lines: int = 4096
    line_elems: int = 8
    miss_penalty: float = 24.0
    clock_ghz: float = 2.5

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ConfigurationError("n_cores must be >= 1")
        if self.line_elems < 1:
            raise ConfigurationError("line_elems must be >= 1")
        if self.cache_lines < 1:
            raise ConfigurationError("cache_lines must be >= 1")

    def barrier_cost(self, active_cores: int) -> float:
        """Barrier cycles when ``active_cores`` cores synchronize."""
        if active_cores <= 1:
            return 0.0
        return self.barrier_latency + self.barrier_per_core * (
            active_cores - 1
        )

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert simulated cycles to wall-clock seconds at the nominal
        clock (for amortization-threshold accounting)."""
        return cycles / (self.clock_ghz * 1e9)

    def with_cores(self, n_cores: int) -> "MachineModel":
        """The same machine restricted/extended to ``n_cores`` cores."""
        return replace(self, n_cores=n_cores)


# ---------------------------------------------------------------------------
# presets (Section 6.3)
# ---------------------------------------------------------------------------
_PRESETS: dict[str, MachineModel] = {
    # Intel Xeon Gold 6238T: 22 cores, 140.8 GB/s — the main machine.
    # Calibrated (see EXPERIMENTS.md) so the barrier-overhead-to-work and
    # locality ratios of the paper's testbed are preserved at the ~50x
    # smaller proxy matrices.
    "intel_xeon_6238t": MachineModel(
        name="intel_xeon_6238t",
        n_cores=22,
        cycles_per_nnz=2.0,
        row_overhead=6.0,
        barrier_latency=1200.0,
        barrier_per_core=10.0,
        p2p_latency=1400.0,
        p2p_check=10.0,
        cache_lines=768,
        miss_penalty=40.0,
        clock_ghz=1.9,
    ),
    # AMD EPYC 7763: 64 cores across 8 chiplets — cross-CCX traffic makes
    # barriers, misses and p2p transfers pricier, reproducing the lower
    # per-core speed-ups of Table 7.4.
    "amd_epyc_7763": MachineModel(
        name="amd_epyc_7763",
        n_cores=64,
        cycles_per_nnz=2.0,
        row_overhead=6.0,
        barrier_latency=4200.0,
        barrier_per_core=30.0,
        p2p_latency=3400.0,
        p2p_check=16.0,
        cache_lines=1024,
        miss_penalty=90.0,
        clock_ghz=2.45,
    ),
    # Huawei Kunpeng 920-4826 (ARM): 48 cores, between the two x86 parts.
    "kunpeng_920": MachineModel(
        name="kunpeng_920",
        n_cores=48,
        cycles_per_nnz=2.2,
        row_overhead=7.0,
        barrier_latency=1500.0,
        barrier_per_core=12.0,
        p2p_latency=1600.0,
        p2p_check=11.0,
        cache_lines=1024,
        miss_penalty=46.0,
        clock_ghz=2.6,
    ),
}


def list_machines() -> list[str]:
    """Names of available machine presets.

    Examples
    --------
    >>> from repro import list_machines
    >>> "intel_xeon_6238t" in list_machines()
    True
    """
    return sorted(_PRESETS)


def get_machine(name: str) -> MachineModel:
    """Look up a machine preset by name.

    Examples
    --------
    >>> from repro import get_machine
    >>> m = get_machine("intel_xeon_6238t")
    >>> (m.name, m.n_cores)
    ('intel_xeon_6238t', 22)
    """
    try:
        return _PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; available: {list_machines()}"
        ) from None
