"""Serial execution model: the denominator of every speed-up.

The serial kernel sweeps rows ``0..n-1`` in storage order — perfect matrix
streaming and whatever x-vector locality the ordering provides — with no
synchronization of any kind.
"""

from __future__ import annotations

import numpy as np

from repro.machine.cache import row_costs_for_sequence
from repro.machine.model import MachineModel
from repro.matrix.csr import CSRMatrix

__all__ = ["simulate_serial"]


def simulate_serial(lower: CSRMatrix, machine: MachineModel) -> float:
    """Simulated cycles of one serial forward substitution."""
    seq = np.arange(lower.n, dtype=np.int64)
    return float(row_costs_for_sequence(lower, seq, machine).sum())
