"""Serial execution model: the denominator of every speed-up.

The serial kernel sweeps rows ``0..n-1`` in storage order — perfect matrix
streaming and whatever x-vector locality the ordering provides — with no
synchronization of any kind.  Costing shares the plan-based kernel of
:mod:`repro.exec.cost`; pass a precompiled serial plan to amortize the
lowering when the same matrix is simulated repeatedly (the experiment
runner caches one serial plan per instance).
"""

from __future__ import annotations

from repro.exec.cost import per_core_costs
from repro.exec.plan import ExecutionPlan, compile_plan
from repro.machine.model import MachineModel
from repro.matrix.csr import CSRMatrix

__all__ = ["simulate_serial"]


def simulate_serial(
    lower: CSRMatrix,
    machine: MachineModel,
    *,
    plan: ExecutionPlan | None = None,
) -> float:
    """Simulated cycles of one serial forward substitution."""
    if plan is None:
        plan = compile_plan(lower, check_diagonal=False)
    return float(sum(c.sum() for c in per_core_costs(plan, machine)))
