"""Vectorized reuse-distance cache model.

Locality is the third pillar of the paper's performance model (work balance,
barriers, locality — Section 5), so the simulator must price it.  We model
a per-core cache with the classic *reuse-distance approximation*: an access
to a cache line hits iff the same line was accessed within the last
``window`` accesses of the same core, where ``window`` is the cache capacity
in lines.  This approximates true LRU stack distance by access distance —
exact for streaming patterns and accurate within a small factor for the
row-sweep access patterns of SpTRSV — while staying fully vectorizable
(O(m log m) NumPy, no per-access Python loop, per the HPC-Python guidance
of avoiding interpreter-bound inner loops).

Two streams are priced per core:

* **x-vector accesses** — one read per off-diagonal non-zero plus the write
  of the row's own entry; this is where schedule-driven reordering
  (Section 5) pays off;
* **matrix streaming** — CSR values/indices are consumed sequentially
  within a row, so they cost ``nnz / line_elems`` lines plus one extra line
  start whenever the executed row is not the successor of the previous row
  on the same core (the penalty for scattered assignments).
"""

from __future__ import annotations

import numpy as np

from repro.machine.model import MachineModel
from repro.matrix.csr import CSRMatrix
from repro.utils.arrays import segmented_gather

__all__ = [
    "reuse_distance_misses",
    "x_access_stream",
    "row_costs_for_sequence",
]


def reuse_distance_misses(line_ids: np.ndarray, window: int) -> np.ndarray:
    """Boolean per-access miss flags under the reuse-distance model.

    Access ``k`` misses iff no access to the same line occurred within the
    previous ``window`` accesses (cold misses included).

    Parameters
    ----------
    line_ids:
        Integer line id per access, in access order.
    window:
        Cache capacity in lines (accesses, under the approximation).
    """
    m = line_ids.size
    if m == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(line_ids, kind="stable")  # groups lines, keeps order
    prev = np.full(m, -1, dtype=np.int64)
    same = line_ids[order][1:] == line_ids[order][:-1]
    prev[order[1:][same]] = order[:-1][same]
    idx = np.arange(m, dtype=np.int64)
    return (prev < 0) | (idx - prev > window)


def x_access_stream(
    lower: CSRMatrix, seq: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated x-vector access indices for executing rows ``seq``.

    Returns ``(stream, counts)`` where ``counts[k]`` is the number of
    accesses row ``seq[k]`` contributes (its stored entries: off-diagonal
    reads plus the diagonal-position write of ``x[row]``).
    """
    seq = np.asarray(seq, dtype=np.int64)
    counts = lower.row_nnz()[seq]
    # flat gather of every row's column slice, no per-row Python loop
    flat = segmented_gather(lower.indptr[seq], counts)
    return lower.indices[flat], counts


def row_costs_for_sequence(
    lower: CSRMatrix,
    seq: np.ndarray,
    machine: MachineModel,
) -> np.ndarray:
    """Simulated cycles for each row of an execution sequence on one core.

    ``cost = row_overhead + cycles_per_nnz * nnz + miss_penalty * misses``
    where misses combine the x-vector reuse-distance misses and the matrix
    streaming lines (see module docstring).  The cache persists across the
    whole sequence (it is per-core state).
    """
    seq = np.asarray(seq, dtype=np.int64)
    if seq.size == 0:
        return np.zeros(0)
    stream, counts = x_access_stream(lower, seq)
    line_ids = stream // machine.line_elems
    misses = reuse_distance_misses(line_ids, machine.cache_lines)
    # per-row x-miss counts via a bounds-safe segment sum: prefix sums
    # differenced at the segment bounds.  (``np.add.reduceat`` would raise
    # IndexError when trailing rows have zero stored entries — bounds equal
    # to the stream length — reachable through ``check_diagonal=False``
    # plans on matrices with missing diagonals.)
    bounds = np.zeros(seq.size + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    prefix = np.zeros(stream.size + 1)
    np.cumsum(misses, out=prefix[1:])
    x_miss = prefix[bounds[1:]] - prefix[bounds[:-1]]

    # matrix streaming lines: contiguous rows share the stream
    mat_lines = counts / machine.line_elems
    jumps = np.ones(seq.size, dtype=np.float64)
    jumps[1:] = (seq[1:] != seq[:-1] + 1).astype(np.float64)
    mat_miss = mat_lines + jumps

    return (
        machine.row_overhead
        + machine.cycles_per_nnz * counts
        + machine.miss_penalty * (x_miss + mat_miss)
    )
