"""Event-driven asynchronous execution simulator (SpMP's model).

SpMP executes the level-set schedule *asynchronously*: a core "moves onto
the next wavefront if and only if all requisites have already been met for
its portion of the next wavefront" (Section 1).  There are no global
barriers; instead a core busy-waits on the completion flags of exactly the
cross-core dependencies of its next row — in the transitively reduced DAG,
which is where SpMP's reduction pays off.

The simulation processes rows in an order consistent with both each core's
program order and the dependency order, computing

    start(v)  = max(core_clock(pi(v)),
                    max over cross-core deps u of finish(u) + p2p_latency)
    finish(v) = start(v) + row_cost(v) + p2p_check * #cross-core deps

with the same per-row costs (compute + cache) as the BSP simulator.  The
makespan is the maximum core clock.
"""

from __future__ import annotations

import numpy as np

from repro.exec.cost import row_cost_and_position
from repro.exec.plan import ExecutionPlan, compile_plan
from repro.graph.dag import DAG
from repro.machine.model import MachineModel
from repro.matrix.csr import CSRMatrix
from repro.scheduler.schedule import Schedule

__all__ = ["AsyncSimResult", "simulate_async"]


class AsyncSimResult:
    """Outcome of an asynchronous execution simulation.

    Attributes
    ----------
    total_cycles:
        Makespan (max core finish time).
    core_finish_cycles:
        Per-core finish times.
    wait_cycles:
        Total cycles cores spent stalled on cross-core dependencies.
    cross_core_deps:
        Number of dependency edges that crossed cores (the synchronization
        the transitive reduction removes).
    """

    __slots__ = (
        "total_cycles",
        "core_finish_cycles",
        "wait_cycles",
        "cross_core_deps",
    )

    def __init__(
        self,
        total_cycles: float,
        core_finish_cycles: np.ndarray,
        wait_cycles: float,
        cross_core_deps: int,
    ) -> None:
        self.total_cycles = total_cycles
        self.core_finish_cycles = core_finish_cycles
        self.wait_cycles = wait_cycles
        self.cross_core_deps = cross_core_deps

    def speedup_over(self, serial_cycles: float) -> float:
        """Speed-up relative to a serial execution time."""
        return serial_cycles / self.total_cycles

    def __repr__(self) -> str:
        return (
            f"AsyncSimResult(total={self.total_cycles:.0f}, "
            f"waits={self.wait_cycles:.0f})"
        )


def simulate_async(
    lower: CSRMatrix,
    schedule: Schedule,
    sync_dag: DAG,
    machine: MachineModel,
    *,
    plan: ExecutionPlan | None = None,
) -> AsyncSimResult:
    """Simulate asynchronous execution of ``schedule`` on ``machine``.

    Parameters
    ----------
    sync_dag:
        The DAG whose edges require synchronization — for SpMP, the
        transitively reduced DAG (fewer edges, fewer waits).  Must be a
        subgraph of the full dependence DAG covering its reachability.
    plan:
        Precompiled plan for ``(lower, schedule)``; compiled on the fly
        when omitted.  Costing shares the plan-based kernel of
        :mod:`repro.exec.cost` with the other simulators.
    """
    n = schedule.n
    core_of = schedule.cores

    # per-core program order and per-row costs from the shared kernel
    if plan is None:
        plan = compile_plan(lower, schedule, check_diagonal=False)
    cost, seq_pos = row_cost_and_position(plan, machine)

    # global processing order consistent with program order and deps:
    # (superstep, position within core) — deps sit in earlier supersteps
    # (or earlier on the same core), program order is per-core position.
    order = np.lexsort((seq_pos, schedule.supersteps))

    finish = np.zeros(n)
    core_clock = np.zeros(schedule.n_cores)
    wait_total = 0.0
    cross_total = 0

    parent_ptr, parent_idx = sync_dag.parent_ptr, sync_dag.parent_idx
    p2p_latency = machine.p2p_latency
    p2p_check = machine.p2p_check

    for v in order:
        v = int(v)
        p = int(core_of[v])
        ready = core_clock[p]
        n_cross = 0
        for k in range(parent_ptr[v], parent_ptr[v + 1]):
            u = int(parent_idx[k])
            if core_of[u] != p:
                n_cross += 1
                dep_ready = finish[u] + p2p_latency
                if dep_ready > ready:
                    ready = dep_ready
        wait_total += ready - core_clock[p]
        cross_total += n_cross
        finish[v] = ready + cost[v] + p2p_check * n_cross
        core_clock[p] = finish[v]

    return AsyncSimResult(
        total_cycles=float(core_clock.max()) if n else 0.0,
        core_finish_cycles=core_clock,
        wait_cycles=float(wait_total),
        cross_core_deps=int(cross_total),
    )
