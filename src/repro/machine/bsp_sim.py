"""Synchronous (BSP) execution simulator.

Executes a barrier schedule on the machine model:

    T = sum over supersteps s of  max_p T(s, p)   +   (S - 1) * L_arch

where ``T(s, p)`` sums the per-row costs (compute + cache) of the rows core
``p`` executes in superstep ``s``, with per-core cache state persisting
across supersteps, and ``L_arch`` is the machine's barrier cost at the
number of cores that ever receive work.

Costing runs on the shared plan-based kernel of :mod:`repro.exec.cost`
(one implementation for the BSP, asynchronous and serial simulators); pass
a precompiled :class:`~repro.exec.plan.ExecutionPlan` to amortize the
lowering across repeated simulations of the same ``(matrix, schedule)``.

This is the measurement model behind Tables 7.1/7.3/7.4/7.5 and
Figures 1.2/7.1/7.2.
"""

from __future__ import annotations

import numpy as np

from repro.exec.cost import bsp_cost_matrix
from repro.exec.plan import ExecutionPlan, compile_plan
from repro.machine.model import MachineModel
from repro.machine.serial_sim import simulate_serial
from repro.matrix.csr import CSRMatrix
from repro.scheduler.schedule import Schedule

__all__ = ["BSPSimResult", "simulate_bsp"]


class BSPSimResult:
    """Outcome of a synchronous execution simulation.

    Attributes
    ----------
    total_cycles:
        End-to-end simulated time.
    compute_cycles:
        ``sum_s max_p T(s, p)`` (the critical compute path).
    barrier_cycles:
        Total barrier cost.
    superstep_cycles:
        Per-superstep ``max_p T(s, p)`` array.
    core_busy_cycles:
        Per-core total busy time (for utilization analyses).
    n_supersteps:
        Superstep count of the schedule.
    """

    __slots__ = (
        "total_cycles",
        "compute_cycles",
        "barrier_cycles",
        "superstep_cycles",
        "core_busy_cycles",
        "n_supersteps",
    )

    def __init__(
        self,
        total_cycles: float,
        compute_cycles: float,
        barrier_cycles: float,
        superstep_cycles: np.ndarray,
        core_busy_cycles: np.ndarray,
        n_supersteps: int,
    ) -> None:
        self.total_cycles = total_cycles
        self.compute_cycles = compute_cycles
        self.barrier_cycles = barrier_cycles
        self.superstep_cycles = superstep_cycles
        self.core_busy_cycles = core_busy_cycles
        self.n_supersteps = n_supersteps

    def speedup_over(self, serial_cycles: float) -> float:
        """Speed-up relative to a serial execution time."""
        return serial_cycles / self.total_cycles

    def __repr__(self) -> str:
        return (
            f"BSPSimResult(total={self.total_cycles:.0f}, "
            f"supersteps={self.n_supersteps})"
        )


def simulate_bsp(
    lower: CSRMatrix,
    schedule: Schedule,
    machine: MachineModel,
    *,
    plan: ExecutionPlan | None = None,
) -> BSPSimResult:
    """Simulate the synchronous execution of ``schedule`` on ``machine``.

    Parameters
    ----------
    plan:
        Precompiled plan for ``(lower, schedule)``; compiled on the fly
        when omitted (cost models need no diagonal validation).
    """
    if plan is None:
        plan = compile_plan(lower, schedule, check_diagonal=False)
    n_steps = schedule.n_supersteps
    step_core, core_busy, active_cores = bsp_cost_matrix(plan, machine)

    superstep_cycles = step_core.max(axis=1)
    compute = float(superstep_cycles.sum())
    barrier = machine.barrier_cost(max(active_cores, 1)) * max(
        n_steps - 1, 0
    )
    return BSPSimResult(
        total_cycles=compute + barrier,
        compute_cycles=compute,
        barrier_cycles=barrier,
        superstep_cycles=superstep_cycles,
        core_busy_cycles=core_busy,
        n_supersteps=n_steps,
    )


def simulate_speedup(
    lower: CSRMatrix,
    schedule: Schedule,
    machine: MachineModel,
) -> float:
    """Convenience: speed-up of ``schedule`` over the serial execution."""
    return simulate_bsp(lower, schedule, machine).speedup_over(
        simulate_serial(lower, machine)
    )
