"""Execution traces and utilization analysis of simulated runs.

Beyond the headline numbers, understanding *why* a schedule is slow needs
per-superstep detail: which cores idled, where the critical path ran, how
much of the time went to barriers versus imbalance versus cache misses.
This module produces structured traces from the BSP simulator plus a
plain-text Gantt rendering for terminals and docs.
"""

from __future__ import annotations

import numpy as np

from repro.exec.cost import bsp_cost_matrix
from repro.exec.plan import ExecutionPlan, compile_plan
from repro.machine.model import MachineModel
from repro.matrix.csr import CSRMatrix
from repro.scheduler.schedule import Schedule

__all__ = ["ExecutionTrace", "trace_bsp", "render_gantt"]


class ExecutionTrace:
    """Per-superstep, per-core busy times of a simulated BSP execution.

    Attributes
    ----------
    busy:
        ``(n_supersteps, n_cores)`` busy cycles.
    superstep_cycles:
        Per-superstep makespan (``busy.max(axis=1)``).
    barrier_cost:
        Cycles charged per barrier.
    """

    __slots__ = ("busy", "superstep_cycles", "barrier_cost")

    def __init__(self, busy: np.ndarray, barrier_cost: float) -> None:
        self.busy = busy
        self.superstep_cycles = (
            busy.max(axis=1) if busy.size else np.zeros(0)
        )
        self.barrier_cost = barrier_cost

    @property
    def n_supersteps(self) -> int:
        return int(self.busy.shape[0])

    @property
    def n_cores(self) -> int:
        return int(self.busy.shape[1])

    @property
    def total_cycles(self) -> float:
        return float(
            self.superstep_cycles.sum()
            + self.barrier_cost * max(self.n_supersteps - 1, 0)
        )

    def utilization(self) -> float:
        """Fraction of core-time spent busy: ``sum(busy) / (P * T)``."""
        if self.total_cycles == 0.0 or self.n_cores == 0:
            return 1.0
        return float(self.busy.sum()
                     / (self.n_cores * self.total_cycles))

    def idle_fraction_per_core(self) -> np.ndarray:
        """Per-core idle fraction of the compute (non-barrier) time."""
        compute = self.superstep_cycles.sum()
        if compute == 0.0:
            return np.zeros(self.n_cores)
        return 1.0 - self.busy.sum(axis=0) / compute

    def imbalance_cycles(self) -> float:
        """Cycles lost to intra-superstep imbalance:
        ``sum_s (max_p - mean_p)``."""
        if self.busy.size == 0:
            return 0.0
        return float(
            (self.superstep_cycles - self.busy.mean(axis=1)).sum()
        )

    def barrier_cycles(self) -> float:
        return self.barrier_cost * max(self.n_supersteps - 1, 0)


def trace_bsp(
    lower: CSRMatrix,
    schedule: Schedule,
    machine: MachineModel,
    *,
    plan: ExecutionPlan | None = None,
) -> ExecutionTrace:
    """Build an :class:`ExecutionTrace` for a synchronous execution.

    Shares the plan-based cost kernel (:mod:`repro.exec.cost`) with the
    simulators, so trace totals agree with :func:`simulate_bsp` exactly.
    """
    if plan is None:
        plan = compile_plan(lower, schedule, check_diagonal=False)
    busy, _, active = bsp_cost_matrix(plan, machine)
    return ExecutionTrace(busy, machine.barrier_cost(max(active, 1)))


def render_gantt(
    trace: ExecutionTrace,
    *,
    width: int = 60,
    max_supersteps: int = 24,
) -> str:
    """Plain-text Gantt chart: one row per core, one column band per
    superstep, fill proportional to the core's busy share of the
    superstep makespan."""
    n_steps = min(trace.n_supersteps, max_supersteps)
    if n_steps == 0:
        return "(empty trace)"
    total = trace.superstep_cycles[:n_steps].sum()
    if total <= 0.0:
        return "(zero-length trace)"
    # band width proportional to superstep makespan
    bands = np.maximum(
        (trace.superstep_cycles[:n_steps] / total * width).astype(int), 1
    )
    lines = []
    for p in range(trace.n_cores):
        cells = []
        for s in range(n_steps):
            peak = trace.superstep_cycles[s]
            share = trace.busy[s, p] / peak if peak > 0 else 0.0
            fill = int(round(share * bands[s]))
            cells.append("#" * fill + "." * (int(bands[s]) - fill))
        lines.append(f"core {p:3d} |" + "|".join(cells) + "|")
    suffix = (
        f"\n(first {n_steps} of {trace.n_supersteps} supersteps; "
        f"utilization {trace.utilization():.0%})"
    )
    return "\n".join(lines) + suffix
