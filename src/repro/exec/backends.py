"""Pluggable execution backends for compiled plans.

A backend turns an :class:`~repro.exec.plan.ExecutionPlan` plus a
right-hand side into a solution.  Backends are registered by name in a
small registry so later scaling work (process pools, native kernels,
accelerators) plugs in behind the same boundary:

* ``numpy`` — always available; one vectorized gather / segment-sum /
  scatter per dependency batch;
* ``numba`` — auto-detected; a JIT-compiled *sequential* sweep over the
  plan's flat arrays (no interpreter in the inner loop, but one thread);
* ``numba-parallel`` — auto-detected; the parallel kernel tier of
  :mod:`~repro.exec.kernels_numba`: ``prange`` over the rows of each
  large dependency batch, and runs of consecutive small batches fused
  into single sequential JIT sweeps (grouping precomputed in the plan's
  ``fused_ptr``), so deep narrow layer structure does not pay per-layer
  dispatch.

Measured tiering (see ``BENCH_exec.json`` / ``tools/bench_report.py``
for the tracked floors): ``numba-parallel`` > ``numba`` > ``numpy`` —
the parallel tier wins on wide batches by using every core and ties the
sequential sweep elsewhere via fusion; the sequential JIT sweep beats
``numpy`` by removing the interpreter from the inner loop.  When numba
is missing the registry falls back along that order silently during
auto-selection (unavailability is probed once per process and cached),
and raises :class:`~repro.errors.BackendUnavailableError` only when an
unavailable backend is requested by name.

Selection order for :func:`get_backend` with no argument: the
``REPRO_EXEC_BACKEND`` environment variable if set (unknown names raise
:class:`~repro.errors.ConfigurationError`), else the fastest available
tier: ``numba-parallel``, then ``numba``, then ``numpy``.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from repro.errors import (
    BackendUnavailableError,
    ConfigurationError,
    MatrixFormatError,
)
from repro.exec.plan import ExecutionPlan

__all__ = [
    "ExecutionBackend",
    "NumpyBackend",
    "NumbaBackend",
    "ParallelNumbaBackend",
    "available_backends",
    "fused_dispatch",
    "get_backend",
    "list_backends",
    "register_backend",
    "solve_rows_ref",
]

#: Environment variable overriding backend auto-selection.
BACKEND_ENV_VAR = "REPRO_EXEC_BACKEND"


class ExecutionBackend:
    """Interface of an execution backend.

    Subclasses implement :meth:`solve` (single RHS) and may override
    :meth:`solve_block` (SpTRSM, ``n x k`` RHS block); constructors raise
    :class:`BackendUnavailableError` when the environment cannot run them.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.exec import compile_plan, get_backend
    >>> from repro.matrix.generators import narrow_band_lower
    >>> L = narrow_band_lower(50, 0.2, 4.0, seed=0)
    >>> backend = get_backend()              # an ExecutionBackend
    >>> plan = compile_plan(L)
    >>> backend.solve(plan, np.ones(L.n)).shape          # SpTRSV
    (50,)
    >>> backend.solve_block(plan, np.ones((L.n, 3))).shape  # SpTRSM
    (50, 3)
    """

    name: str = "abstract"

    def solve(
        self,
        plan: ExecutionPlan,
        b: np.ndarray,
        x: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve the plan's triangular system for ``b``, into ``x``."""
        raise NotImplementedError

    def solve_block(
        self,
        plan: ExecutionPlan,
        b_block: np.ndarray,
        x_block: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve for an ``(n, k)`` right-hand-side block (SpTRSM)."""
        raise NotImplementedError

    @staticmethod
    def _check_rhs(plan: ExecutionPlan, b: np.ndarray) -> np.ndarray:
        """Validate a single RHS against the plan and coerce to float64.

        Integer (or lower-precision) right-hand sides would otherwise
        propagate their dtype into intermediates and outputs, silently
        truncating results."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (plan.n,):
            raise MatrixFormatError(
                f"right-hand side has shape {b.shape}, plan covers "
                f"{plan.n} rows"
            )
        return b

    @staticmethod
    def _check_rhs_block(
        plan: ExecutionPlan, b_block: np.ndarray
    ) -> np.ndarray:
        """Validate an ``(n, k)`` RHS block and coerce to float64."""
        b_block = np.asarray(b_block, dtype=np.float64)
        if b_block.ndim != 2 or b_block.shape[0] != plan.n:
            raise MatrixFormatError(
                f"right-hand-side block has shape {b_block.shape}, "
                f"expected ({plan.n}, k)"
            )
        return b_block

    @staticmethod
    def _check_out(x: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        """Validate a caller-supplied output buffer.

        Unlike the RHS, the output cannot be silently coerced — the
        caller expects results *in this buffer* — so a wrong dtype or
        shape raises instead (an integer buffer would truncate every
        result, the bug the RHS coercion fixes)."""
        if x.shape != shape:
            raise MatrixFormatError(
                f"output buffer has shape {x.shape}, expected {shape}"
            )
        if x.dtype != np.float64:
            raise MatrixFormatError(
                f"output buffer must be float64, got {x.dtype}"
            )
        return x

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def _segment_sums(
    contrib: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Sum contiguous row segments of ``contrib`` (1-D or 2-D) into ``out``.

    ``out[i]`` receives ``contrib[starts[i]:starts[i]+counts[i]].sum(0)``.
    Built on ``np.add.reduceat`` restricted to the non-empty segments:
    reduceat mis-handles empty segments (a repeated index returns the
    element at that position, a start index equal to ``len(contrib)``
    raises), so those rows keep their zero initialization instead.  The
    accumulation order is identical for 1-D and 2-D inputs, which is what
    makes single-RHS and block solves bit-equal column for column.
    """
    nz = np.flatnonzero(counts)
    if nz.size:
        out[nz] = np.add.reduceat(contrib, starts[nz], axis=0)
    return out


class NumpyBackend(ExecutionBackend):
    """Vectorized batch kernel: one gather/segment-sum/scatter per batch.

    Rows inside a batch are mutually independent by construction, so the
    whole batch is computed with flat-array NumPy operations; the Python
    interpreter is entered once per dependency layer instead of once per
    row.  The single-RHS and block kernels share one segment-sum
    (:func:`_segment_sums`), so ``solve_block`` columns are bit-equal to
    the corresponding ``solve`` results — the invariant the coalescing
    :class:`~repro.service.SolveService` relies on.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.exec import compile_plan
    >>> from repro.exec.backends import NumpyBackend
    >>> from repro.matrix.generators import narrow_band_lower
    >>> L = narrow_band_lower(60, 0.2, 4.0, seed=1)
    >>> plan = compile_plan(L)
    >>> x = NumpyBackend().solve(plan, np.ones(L.n))
    >>> bool(np.allclose(L.matvec(x), np.ones(L.n)))
    True
    """

    name = "numpy"

    def solve(
        self,
        plan: ExecutionPlan,
        b: np.ndarray,
        x: np.ndarray | None = None,
    ) -> np.ndarray:
        plan.require_solvable()
        b = self._check_rhs(plan, b)
        if x is None:
            x = np.zeros(plan.n)
        else:
            x = self._check_out(x, (plan.n,))
        rows, batch_ptr = plan.rows, plan.batch_ptr
        off_ptr, off_cols = plan.off_ptr, plan.off_cols
        off_vals, diag = plan.off_vals, plan.diag
        for t in range(plan.n_batches):
            lo, hi = batch_ptr[t], batch_ptr[t + 1]
            r = rows[lo:hi]
            s0, s1 = off_ptr[lo], off_ptr[hi]
            if s1 > s0:
                contrib = off_vals[s0:s1] * x[off_cols[s0:s1]]
                sums = _segment_sums(
                    contrib,
                    off_ptr[lo:hi] - s0,
                    off_ptr[lo + 1:hi + 1] - off_ptr[lo:hi],
                    np.zeros(hi - lo),
                )
                x[r] = (b[r] - sums) / diag[lo:hi]
            else:
                x[r] = b[r] / diag[lo:hi]
        return x

    def solve_block(
        self,
        plan: ExecutionPlan,
        b_block: np.ndarray,
        x_block: np.ndarray | None = None,
    ) -> np.ndarray:
        plan.require_solvable()
        b_block = self._check_rhs_block(plan, b_block)
        if x_block is None:
            # float allocation, never np.zeros_like: an integer RHS block
            # would otherwise silently truncate every result column
            x_block = np.zeros(b_block.shape)
        else:
            x_block = self._check_out(x_block, b_block.shape)
        rows, batch_ptr = plan.rows, plan.batch_ptr
        off_ptr, off_cols = plan.off_ptr, plan.off_cols
        off_vals, diag = plan.off_vals, plan.diag
        for t in range(plan.n_batches):
            lo, hi = batch_ptr[t], batch_ptr[t + 1]
            r = rows[lo:hi]
            s0, s1 = off_ptr[lo], off_ptr[hi]
            if s1 > s0:
                # (nnz, k) contributions: each gathered index feeds all k
                # columns at once, amortizing the random access the
                # single-RHS kernel pays per column; the shared
                # segment-sum keeps every column bit-equal to solve()
                contrib = (
                    off_vals[s0:s1, None] * x_block[off_cols[s0:s1]]
                )
                sums = _segment_sums(
                    contrib,
                    off_ptr[lo:hi] - s0,
                    off_ptr[lo + 1:hi + 1] - off_ptr[lo:hi],
                    np.zeros((hi - lo, contrib.shape[1])),
                )
                x_block[r] = (b_block[r] - sums) / diag[lo:hi, None]
            else:
                x_block[r] = b_block[r] / diag[lo:hi, None]
        return x_block


class NumbaBackend(ExecutionBackend):
    """JIT-compiled sequential sweep over the plan's flat arrays.

    The plan's batch order is a topological execution order, so a single
    machine-code loop over positions is correct; numba removes the
    interpreter from the inner loop entirely.  The measured middle tier:
    faster than ``numpy`` (no per-layer Python dispatch), slower than
    ``numba-parallel`` on wide batches (one thread).  Runs the shared
    kernels of :mod:`~repro.exec.kernels_numba`, so its results are
    bitwise identical to the parallel/fused tier.  Constructing this
    backend without numba installed raises
    :class:`BackendUnavailableError`.

    Examples
    --------
    >>> from repro.exec.backends import NumbaBackend
    >>> NumbaBackend().name                     # doctest: +SKIP
    'numba'
    >>> from repro.exec import get_backend      # graceful fallback:
    >>> get_backend().name in ("numba-parallel", "numba", "numpy")
    True
    """

    name = "numba"

    # pragma-no-cover rationale: the CI matrix exercises the numba tier
    # only on the legs that install numba; the container default has none.
    def __init__(self) -> None:
        from repro.exec import kernels_numba

        if not kernels_numba.have_numba():
            raise BackendUnavailableError(
                f"the {self.name!r} backend requires the numba package"
            )
        self._kernels = kernels_numba.jit_kernels()  # pragma: no cover

    def solve(
        self,
        plan: ExecutionPlan,
        b: np.ndarray,
        x: np.ndarray | None = None,
    ) -> np.ndarray:  # pragma: no cover - requires numba
        plan.require_solvable()
        b = np.ascontiguousarray(self._check_rhs(plan, b))
        if x is None:
            x = np.zeros(plan.n)
        else:
            x = self._check_out(x, (plan.n,))
        self._kernels.sweep(
            plan.rows, plan.off_ptr, plan.off_cols, plan.off_vals,
            plan.diag, b, x, 0, plan.n,
        )
        return x

    def solve_block(
        self,
        plan: ExecutionPlan,
        b_block: np.ndarray,
        x_block: np.ndarray | None = None,
    ) -> np.ndarray:  # pragma: no cover - requires numba
        plan.require_solvable()
        b_block = np.ascontiguousarray(self._check_rhs_block(plan, b_block))
        if x_block is None:
            x_block = np.zeros(b_block.shape)
        else:
            x_block = self._check_out(x_block, b_block.shape)
        self._kernels.sweep_block(
            plan.rows, plan.off_ptr, plan.off_cols, plan.off_vals,
            plan.diag, b_block, x_block, 0, plan.n,
        )
        return x_block


def fused_dispatch(plan: ExecutionPlan) -> list[tuple[int, int, bool]]:
    """The parallel backend's per-group dispatch decisions for ``plan``.

    Returns ``(lo, hi, parallel)`` position spans, one per fusion group:
    ``parallel`` groups are single batches with at least
    ``fuse_threshold`` rows (worth a ``prange`` fork/join); everything
    else — fused runs of small batches, or isolated small batches — runs
    as one sequential sweep.  Pure plan arithmetic, so the dispatch
    policy is testable without numba.

    Examples
    --------
    >>> from repro.exec import compile_plan
    >>> from repro.exec.backends import fused_dispatch
    >>> from repro.matrix.generators import narrow_band_lower
    >>> plan = compile_plan(narrow_band_lower(60, 0.2, 4.0, seed=0))
    >>> spans = fused_dispatch(plan)
    >>> (spans[0][0], spans[-1][1])     # spans tile all positions
    (0, 60)
    """
    batch_ptr, fused_ptr = plan.batch_ptr, plan.fused_ptr
    threshold = max(int(plan.fuse_threshold), 1)
    out = []
    for g in range(plan.n_fused_groups):
        b0, b1 = int(fused_ptr[g]), int(fused_ptr[g + 1])
        lo, hi = int(batch_ptr[b0]), int(batch_ptr[b1])
        out.append((lo, hi, b1 - b0 == 1 and hi - lo >= threshold))
    return out


class ParallelNumbaBackend(ExecutionBackend):
    """The parallel kernel tier: ``prange`` batches plus fused sweeps.

    Executes the plan one fusion group at a time (see
    :func:`fused_dispatch`): large dependency batches go to a
    ``parallel=True`` kernel whose ``prange`` spans the batch's mutually
    independent rows; runs of consecutive small batches — precomputed
    into the plan's ``fused_ptr`` — execute as a single sequential JIT
    sweep, so a deep narrow DAG costs a handful of kernel calls instead
    of one dispatch plus one fork/join per tiny layer.  All kernels share
    one scalar accumulation order (:mod:`~repro.exec.kernels_numba`), so
    results are bitwise identical to the sequential ``numba`` backend and
    column-for-column across ``solve``/``solve_block``.  The measured top
    tier; auto-selection prefers it.  Constructing without numba raises
    :class:`BackendUnavailableError`.

    Examples
    --------
    >>> from repro.exec.backends import ParallelNumbaBackend
    >>> ParallelNumbaBackend().name             # doctest: +SKIP
    'numba-parallel'
    """

    name = "numba-parallel"

    def __init__(self) -> None:
        from repro.exec import kernels_numba

        if not kernels_numba.have_numba():
            raise BackendUnavailableError(
                f"the {self.name!r} backend requires the numba package"
            )
        self._kernels = kernels_numba.jit_kernels()  # pragma: no cover

    def solve(
        self,
        plan: ExecutionPlan,
        b: np.ndarray,
        x: np.ndarray | None = None,
    ) -> np.ndarray:  # pragma: no cover - requires numba
        plan.require_solvable()
        b = np.ascontiguousarray(self._check_rhs(plan, b))
        if x is None:
            x = np.zeros(plan.n)
        else:
            x = self._check_out(x, (plan.n,))
        k = self._kernels
        args = (
            plan.rows, plan.off_ptr, plan.off_cols, plan.off_vals,
            plan.diag, b, x,
        )
        for lo, hi, parallel in fused_dispatch(plan):
            (k.psweep if parallel else k.sweep)(*args, lo, hi)
        return x

    def solve_block(
        self,
        plan: ExecutionPlan,
        b_block: np.ndarray,
        x_block: np.ndarray | None = None,
    ) -> np.ndarray:  # pragma: no cover - requires numba
        plan.require_solvable()
        b_block = np.ascontiguousarray(self._check_rhs_block(plan, b_block))
        if x_block is None:
            x_block = np.zeros(b_block.shape)
        else:
            x_block = self._check_out(x_block, b_block.shape)
        k = self._kernels
        args = (
            plan.rows, plan.off_ptr, plan.off_cols, plan.off_vals,
            plan.diag, b_block, x_block,
        )
        for lo, hi, parallel in fused_dispatch(plan):
            (k.psweep_block if parallel else k.sweep_block)(*args, lo, hi)
        return x_block


def solve_rows_ref(
    plan: ExecutionPlan,
    row_ids: np.ndarray,
    b: np.ndarray,
    x: np.ndarray,
) -> None:
    """Reference per-row kernel over plan arrays, for arbitrary row subsets.

    Used where execution granularity is a (superstep, core) cell rather
    than a dependency batch — e.g. the thread-based executor, whose
    workers each own one cell per superstep.  Rows must be given in an
    order that respects their mutual dependencies (ascending ids forward,
    descending backward); all other dependencies must already be in ``x``.
    """
    plan.require_solvable()
    rows, pos = plan.rows, plan.pos
    off_ptr, off_cols = plan.off_ptr, plan.off_cols
    off_vals, diag = plan.off_vals, plan.diag
    for i in row_ids:
        k = pos[i]
        i = int(i)
        s0, s1 = off_ptr[k], off_ptr[k + 1]
        x[i] = (b[i] - np.dot(off_vals[s0:s1], x[off_cols[s0:s1]])) / diag[k]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_FACTORIES: dict[str, Callable[[], ExecutionBackend]] = {}
_INSTANCES: dict[str, ExecutionBackend] = {}
#: Factories that raised BackendUnavailableError, memoized so the (slow)
#: availability probe — e.g. the numba import — runs once per process,
#: not on every available_backends()/get_backend() call.
_UNAVAILABLE: dict[str, BackendUnavailableError] = {}


def register_backend(
    name: str,
    factory: Callable[[], ExecutionBackend],
    *,
    replace: bool = False,
) -> None:
    """Register a backend factory under ``name``.

    The factory is called lazily on first :func:`get_backend` lookup; it
    should raise :class:`BackendUnavailableError` when the environment
    cannot support the backend.  Re-registering a name clears any cached
    unavailability verdict for it.

    Examples
    --------
    >>> from repro.exec import get_backend, list_backends, register_backend
    >>> from repro.exec.backends import NumpyBackend
    >>> class LoudBackend(NumpyBackend):
    ...     name = "loud"
    >>> register_backend("loud", LoudBackend, replace=True)
    >>> "loud" in list_backends()
    True
    >>> get_backend("loud").name
    'loud'
    """
    if name in _FACTORIES and not replace:
        raise ConfigurationError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)
    _UNAVAILABLE.pop(name, None)


def list_backends() -> list[str]:
    """All registered backend names (available or not).

    Examples
    --------
    >>> from repro.exec import list_backends
    >>> {"numpy", "numba"} <= set(list_backends())
    True
    """
    return sorted(_FACTORIES)


def available_backends() -> list[str]:
    """Registered backends that can actually run here.

    Unavailability verdicts are cached per process (see
    :data:`_UNAVAILABLE`), so repeated calls — the CLI, the service, the
    tuner all consult this — never re-run a slow import probe.

    Examples
    --------
    >>> from repro.exec import available_backends
    >>> "numpy" in available_backends()   # always runnable
    True
    """
    out = []
    for name in list_backends():
        try:
            _instantiate(name)
        except BackendUnavailableError:
            continue
        out.append(name)
    return out


def _instantiate(name: str) -> ExecutionBackend:
    if name in _UNAVAILABLE:
        raise _UNAVAILABLE[name]
    if name not in _INSTANCES:
        try:
            factory = _FACTORIES[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown backend {name!r}; registered: {list_backends()}"
            ) from None
        try:
            _INSTANCES[name] = factory()
        except BackendUnavailableError as exc:
            _UNAVAILABLE[name] = exc
            raise
    return _INSTANCES[name]


#: Auto-selection preference, fastest first (the measured tiering the
#: bench floors in ``benchmarks/test_exec_plan_bench.py`` enforce).
_AUTO_ORDER = ("numba-parallel", "numba", "numpy")


def get_backend(name: str | None = None) -> ExecutionBackend:
    """Resolve a backend instance.

    ``name=None`` auto-selects: the ``REPRO_EXEC_BACKEND`` environment
    variable when set — an unknown name there raises
    :class:`~repro.errors.ConfigurationError` naming the variable — else
    the fastest available tier, in measured order ``numba-parallel`` >
    ``numba`` > ``numpy``.  Passing an explicit ``name`` raises
    :class:`BackendUnavailableError` if that backend cannot run.

    Examples
    --------
    >>> from repro.exec import get_backend
    >>> get_backend("numpy").name
    'numpy'
    >>> get_backend().name in ("numba-parallel", "numba", "numpy")
    True
    """
    if isinstance(name, ExecutionBackend):
        return name
    if name is not None:
        return _instantiate(name)
    env = os.environ.get(BACKEND_ENV_VAR)
    if env:
        if env not in _FACTORIES:
            raise ConfigurationError(
                f"{BACKEND_ENV_VAR}={env!r} selects an unknown backend; "
                f"registered: {list_backends()}"
            )
        return _instantiate(env)
    for candidate in _AUTO_ORDER:
        try:
            return _instantiate(candidate)
        except BackendUnavailableError:
            continue
    raise BackendUnavailableError(  # pragma: no cover - numpy always runs
        "no execution backend is available"
    )


register_backend("numpy", NumpyBackend)
register_backend("numba", NumbaBackend)
register_backend("numba-parallel", ParallelNumbaBackend)
