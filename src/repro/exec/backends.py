"""Pluggable execution backends for compiled plans.

A backend turns an :class:`~repro.exec.plan.ExecutionPlan` plus a
right-hand side into a solution.  Backends are registered by name in a
small registry so later scaling work (process pools, native kernels,
accelerators) plugs in behind the same boundary:

* ``numpy`` — always available; one vectorized gather / segment-sum /
  scatter per dependency batch;
* ``numba`` — auto-detected; a JIT-compiled sequential sweep over the
  plan's flat arrays (fastest when numba is installed, and a template for
  future native backends).  When numba is missing the registry falls back
  to ``numpy`` silently during auto-selection, and raises
  :class:`~repro.errors.BackendUnavailableError` only when the backend is
  requested by name.

Selection order for :func:`get_backend` with no argument: the
``REPRO_EXEC_BACKEND`` environment variable if set, else ``numba`` when
importable, else ``numpy``.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from repro.errors import (
    BackendUnavailableError,
    ConfigurationError,
    MatrixFormatError,
)
from repro.exec.plan import ExecutionPlan

__all__ = [
    "ExecutionBackend",
    "NumpyBackend",
    "NumbaBackend",
    "available_backends",
    "get_backend",
    "list_backends",
    "register_backend",
    "solve_rows_ref",
]

#: Environment variable overriding backend auto-selection.
BACKEND_ENV_VAR = "REPRO_EXEC_BACKEND"


class ExecutionBackend:
    """Interface of an execution backend.

    Subclasses implement :meth:`solve` (single RHS) and may override
    :meth:`solve_block` (SpTRSM, ``n x k`` RHS block); constructors raise
    :class:`BackendUnavailableError` when the environment cannot run them.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.exec import compile_plan, get_backend
    >>> from repro.matrix.generators import narrow_band_lower
    >>> L = narrow_band_lower(50, 0.2, 4.0, seed=0)
    >>> backend = get_backend()              # an ExecutionBackend
    >>> plan = compile_plan(L)
    >>> backend.solve(plan, np.ones(L.n)).shape          # SpTRSV
    (50,)
    >>> backend.solve_block(plan, np.ones((L.n, 3))).shape  # SpTRSM
    (50, 3)
    """

    name: str = "abstract"

    def solve(
        self,
        plan: ExecutionPlan,
        b: np.ndarray,
        x: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve the plan's triangular system for ``b``, into ``x``."""
        raise NotImplementedError

    def solve_block(
        self,
        plan: ExecutionPlan,
        b_block: np.ndarray,
        x_block: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve for an ``(n, k)`` right-hand-side block (SpTRSM)."""
        raise NotImplementedError

    @staticmethod
    def _check_rhs(plan: ExecutionPlan, b: np.ndarray) -> np.ndarray:
        """Validate a single RHS against the plan and coerce to float64.

        Integer (or lower-precision) right-hand sides would otherwise
        propagate their dtype into intermediates and outputs, silently
        truncating results."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (plan.n,):
            raise MatrixFormatError(
                f"right-hand side has shape {b.shape}, plan covers "
                f"{plan.n} rows"
            )
        return b

    @staticmethod
    def _check_rhs_block(
        plan: ExecutionPlan, b_block: np.ndarray
    ) -> np.ndarray:
        """Validate an ``(n, k)`` RHS block and coerce to float64."""
        b_block = np.asarray(b_block, dtype=np.float64)
        if b_block.ndim != 2 or b_block.shape[0] != plan.n:
            raise MatrixFormatError(
                f"right-hand-side block has shape {b_block.shape}, "
                f"expected ({plan.n}, k)"
            )
        return b_block

    @staticmethod
    def _check_out(x: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        """Validate a caller-supplied output buffer.

        Unlike the RHS, the output cannot be silently coerced — the
        caller expects results *in this buffer* — so a wrong dtype or
        shape raises instead (an integer buffer would truncate every
        result, the bug the RHS coercion fixes)."""
        if x.shape != shape:
            raise MatrixFormatError(
                f"output buffer has shape {x.shape}, expected {shape}"
            )
        if x.dtype != np.float64:
            raise MatrixFormatError(
                f"output buffer must be float64, got {x.dtype}"
            )
        return x

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def _segment_sums(
    contrib: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Sum contiguous row segments of ``contrib`` (1-D or 2-D) into ``out``.

    ``out[i]`` receives ``contrib[starts[i]:starts[i]+counts[i]].sum(0)``.
    Built on ``np.add.reduceat`` restricted to the non-empty segments:
    reduceat mis-handles empty segments (a repeated index returns the
    element at that position, a start index equal to ``len(contrib)``
    raises), so those rows keep their zero initialization instead.  The
    accumulation order is identical for 1-D and 2-D inputs, which is what
    makes single-RHS and block solves bit-equal column for column.
    """
    nz = np.flatnonzero(counts)
    if nz.size:
        out[nz] = np.add.reduceat(contrib, starts[nz], axis=0)
    return out


class NumpyBackend(ExecutionBackend):
    """Vectorized batch kernel: one gather/segment-sum/scatter per batch.

    Rows inside a batch are mutually independent by construction, so the
    whole batch is computed with flat-array NumPy operations; the Python
    interpreter is entered once per dependency layer instead of once per
    row.  The single-RHS and block kernels share one segment-sum
    (:func:`_segment_sums`), so ``solve_block`` columns are bit-equal to
    the corresponding ``solve`` results — the invariant the coalescing
    :class:`~repro.service.SolveService` relies on.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.exec import compile_plan
    >>> from repro.exec.backends import NumpyBackend
    >>> from repro.matrix.generators import narrow_band_lower
    >>> L = narrow_band_lower(60, 0.2, 4.0, seed=1)
    >>> plan = compile_plan(L)
    >>> x = NumpyBackend().solve(plan, np.ones(L.n))
    >>> bool(np.allclose(L.matvec(x), np.ones(L.n)))
    True
    """

    name = "numpy"

    def solve(
        self,
        plan: ExecutionPlan,
        b: np.ndarray,
        x: np.ndarray | None = None,
    ) -> np.ndarray:
        plan.require_solvable()
        b = self._check_rhs(plan, b)
        if x is None:
            x = np.zeros(plan.n)
        else:
            x = self._check_out(x, (plan.n,))
        rows, batch_ptr = plan.rows, plan.batch_ptr
        off_ptr, off_cols = plan.off_ptr, plan.off_cols
        off_vals, diag = plan.off_vals, plan.diag
        for t in range(plan.n_batches):
            lo, hi = batch_ptr[t], batch_ptr[t + 1]
            r = rows[lo:hi]
            s0, s1 = off_ptr[lo], off_ptr[hi]
            if s1 > s0:
                contrib = off_vals[s0:s1] * x[off_cols[s0:s1]]
                sums = _segment_sums(
                    contrib,
                    off_ptr[lo:hi] - s0,
                    off_ptr[lo + 1:hi + 1] - off_ptr[lo:hi],
                    np.zeros(hi - lo),
                )
                x[r] = (b[r] - sums) / diag[lo:hi]
            else:
                x[r] = b[r] / diag[lo:hi]
        return x

    def solve_block(
        self,
        plan: ExecutionPlan,
        b_block: np.ndarray,
        x_block: np.ndarray | None = None,
    ) -> np.ndarray:
        plan.require_solvable()
        b_block = self._check_rhs_block(plan, b_block)
        if x_block is None:
            # float allocation, never np.zeros_like: an integer RHS block
            # would otherwise silently truncate every result column
            x_block = np.zeros(b_block.shape)
        else:
            x_block = self._check_out(x_block, b_block.shape)
        rows, batch_ptr = plan.rows, plan.batch_ptr
        off_ptr, off_cols = plan.off_ptr, plan.off_cols
        off_vals, diag = plan.off_vals, plan.diag
        for t in range(plan.n_batches):
            lo, hi = batch_ptr[t], batch_ptr[t + 1]
            r = rows[lo:hi]
            s0, s1 = off_ptr[lo], off_ptr[hi]
            if s1 > s0:
                # (nnz, k) contributions: each gathered index feeds all k
                # columns at once, amortizing the random access the
                # single-RHS kernel pays per column; the shared
                # segment-sum keeps every column bit-equal to solve()
                contrib = (
                    off_vals[s0:s1, None] * x_block[off_cols[s0:s1]]
                )
                sums = _segment_sums(
                    contrib,
                    off_ptr[lo:hi] - s0,
                    off_ptr[lo + 1:hi + 1] - off_ptr[lo:hi],
                    np.zeros((hi - lo, contrib.shape[1])),
                )
                x_block[r] = (b_block[r] - sums) / diag[lo:hi, None]
            else:
                x_block[r] = b_block[r] / diag[lo:hi, None]
        return x_block


class NumbaBackend(ExecutionBackend):
    """JIT-compiled sequential sweep over the plan's flat arrays.

    The plan's batch order is a topological execution order, so a single
    machine-code loop over positions is correct; numba removes the
    interpreter from the inner loop entirely.  Constructing this backend
    without numba installed raises :class:`BackendUnavailableError`.

    Examples
    --------
    >>> from repro.exec.backends import NumbaBackend
    >>> NumbaBackend().name                     # doctest: +SKIP
    'numba'
    >>> from repro.exec import get_backend      # graceful fallback:
    >>> get_backend().name in ("numba", "numpy")
    True
    """

    name = "numba"

    def __init__(self) -> None:
        try:
            import numba
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise BackendUnavailableError(
                "the 'numba' backend requires the numba package"
            ) from exc
        self._njit = numba.njit
        self._kernel = None
        self._block_kernel = None

    # pragma-no-cover rationale: the CI matrix exercises this only on the
    # legs that install numba; the container default has none.
    def _compiled(self):  # pragma: no cover - requires numba
        if self._kernel is None:
            @self._njit(cache=True)
            def kernel(rows, off_ptr, off_cols, off_vals, diag, b, x):
                for k in range(rows.size):
                    i = rows[k]
                    acc = b[i]
                    for t in range(off_ptr[k], off_ptr[k + 1]):
                        acc -= off_vals[t] * x[off_cols[t]]
                    x[i] = acc / diag[k]

            self._kernel = kernel
        return self._kernel

    def _compiled_block(self):  # pragma: no cover - requires numba
        if self._block_kernel is None:
            @self._njit(cache=True)
            def kernel(rows, off_ptr, off_cols, off_vals, diag, b, x):
                width = b.shape[1]
                for k in range(rows.size):
                    i = rows[k]
                    for c in range(width):
                        acc = b[i, c]
                        for t in range(off_ptr[k], off_ptr[k + 1]):
                            acc -= off_vals[t] * x[off_cols[t], c]
                        x[i, c] = acc / diag[k]

            self._block_kernel = kernel
        return self._block_kernel

    def solve(
        self,
        plan: ExecutionPlan,
        b: np.ndarray,
        x: np.ndarray | None = None,
    ) -> np.ndarray:  # pragma: no cover - requires numba
        plan.require_solvable()
        b = np.ascontiguousarray(self._check_rhs(plan, b))
        if x is None:
            x = np.zeros(plan.n)
        else:
            x = self._check_out(x, (plan.n,))
        self._compiled()(
            plan.rows, plan.off_ptr, plan.off_cols, plan.off_vals,
            plan.diag, b, x,
        )
        return x

    def solve_block(
        self,
        plan: ExecutionPlan,
        b_block: np.ndarray,
        x_block: np.ndarray | None = None,
    ) -> np.ndarray:  # pragma: no cover - requires numba
        plan.require_solvable()
        b_block = np.ascontiguousarray(self._check_rhs_block(plan, b_block))
        if x_block is None:
            x_block = np.zeros(b_block.shape)
        else:
            x_block = self._check_out(x_block, b_block.shape)
        self._compiled_block()(
            plan.rows, plan.off_ptr, plan.off_cols, plan.off_vals,
            plan.diag, b_block, x_block,
        )
        return x_block


def solve_rows_ref(
    plan: ExecutionPlan,
    row_ids: np.ndarray,
    b: np.ndarray,
    x: np.ndarray,
) -> None:
    """Reference per-row kernel over plan arrays, for arbitrary row subsets.

    Used where execution granularity is a (superstep, core) cell rather
    than a dependency batch — e.g. the thread-based executor, whose
    workers each own one cell per superstep.  Rows must be given in an
    order that respects their mutual dependencies (ascending ids forward,
    descending backward); all other dependencies must already be in ``x``.
    """
    plan.require_solvable()
    rows, pos = plan.rows, plan.pos
    off_ptr, off_cols = plan.off_ptr, plan.off_cols
    off_vals, diag = plan.off_vals, plan.diag
    for i in row_ids:
        k = pos[i]
        i = int(i)
        s0, s1 = off_ptr[k], off_ptr[k + 1]
        x[i] = (b[i] - np.dot(off_vals[s0:s1], x[off_cols[s0:s1]])) / diag[k]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_FACTORIES: dict[str, Callable[[], ExecutionBackend]] = {}
_INSTANCES: dict[str, ExecutionBackend] = {}


def register_backend(
    name: str,
    factory: Callable[[], ExecutionBackend],
    *,
    replace: bool = False,
) -> None:
    """Register a backend factory under ``name``.

    The factory is called lazily on first :func:`get_backend` lookup; it
    should raise :class:`BackendUnavailableError` when the environment
    cannot support the backend.

    Examples
    --------
    >>> from repro.exec import get_backend, list_backends, register_backend
    >>> from repro.exec.backends import NumpyBackend
    >>> class LoudBackend(NumpyBackend):
    ...     name = "loud"
    >>> register_backend("loud", LoudBackend, replace=True)
    >>> "loud" in list_backends()
    True
    >>> get_backend("loud").name
    'loud'
    """
    if name in _FACTORIES and not replace:
        raise ConfigurationError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def list_backends() -> list[str]:
    """All registered backend names (available or not).

    Examples
    --------
    >>> from repro.exec import list_backends
    >>> {"numpy", "numba"} <= set(list_backends())
    True
    """
    return sorted(_FACTORIES)


def available_backends() -> list[str]:
    """Registered backends that can actually run here.

    Examples
    --------
    >>> from repro.exec import available_backends
    >>> "numpy" in available_backends()   # always runnable
    True
    """
    out = []
    for name in list_backends():
        try:
            _instantiate(name)
        except BackendUnavailableError:
            continue
        out.append(name)
    return out


def _instantiate(name: str) -> ExecutionBackend:
    if name not in _INSTANCES:
        try:
            factory = _FACTORIES[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown backend {name!r}; registered: {list_backends()}"
            ) from None
        _INSTANCES[name] = factory()
    return _INSTANCES[name]


def get_backend(name: str | None = None) -> ExecutionBackend:
    """Resolve a backend instance.

    ``name=None`` auto-selects: the ``REPRO_EXEC_BACKEND`` environment
    variable when set, else the fastest available backend (``numba`` when
    importable, falling back to ``numpy``).  Passing an explicit ``name``
    raises :class:`BackendUnavailableError` if that backend cannot run.

    Examples
    --------
    >>> from repro.exec import get_backend
    >>> get_backend("numpy").name
    'numpy'
    >>> get_backend().name in ("numba", "numpy")   # auto-selection
    True
    """
    if isinstance(name, ExecutionBackend):
        return name
    if name is not None:
        return _instantiate(name)
    env = os.environ.get(BACKEND_ENV_VAR)
    if env:
        return _instantiate(env)
    try:
        return _instantiate("numba")
    except BackendUnavailableError:
        return _instantiate("numpy")


register_backend("numpy", NumpyBackend)
register_backend("numba", NumbaBackend)
