"""Execution plans: compile schedules once, execute them fast, anywhere.

This package is the boundary between *what* a schedule says and *how* it
is executed — the load-bearing seam every scaling direction (process
pools, sharding, native kernels) plugs into:

* :mod:`~repro.exec.plan` — :func:`compile_plan` lowers a
  ``(CSRMatrix, Schedule)`` pair into an :class:`ExecutionPlan`: flat
  contiguous arrays of dependency-layer batches, off-diagonal gather
  indices, precompiled diagonals (validated once, at compile time) and
  per-core program order;
* :mod:`~repro.exec.backends` — the pluggable kernel registry
  (``numpy`` vectorized batches always available; the JIT tiers
  ``numba`` and ``numba-parallel`` auto-detected with graceful
  fallback, preferred in measured speed order) consuming plans instead
  of walking CSR rows in Python;
* :mod:`~repro.exec.kernels_numba` — the shared JIT kernel tier
  (``prange`` batch sweeps, fused small-layer sweeps, persistent
  artifact cache so warm processes never recompile);
* :mod:`~repro.exec.cost` — the single plan-based cost kernel shared by
  the BSP, asynchronous and serial machine simulators;
* :mod:`~repro.exec.plan_cache` — a keyed, thread-safe LRU
  :class:`PlanCache` with hit/miss counters, shared by the experiment
  runners (each (instance, scheduler, cores) triple compiled exactly
  once per worker) and the :class:`~repro.service.SolveService`.
"""

from repro.exec.backends import (
    ExecutionBackend,
    NumbaBackend,
    NumpyBackend,
    ParallelNumbaBackend,
    available_backends,
    get_backend,
    list_backends,
    register_backend,
)
from repro.exec.plan import (
    DEFAULT_FUSE_THRESHOLD,
    ExecutionPlan,
    compile_count,
    compile_plan,
)
from repro.exec.plan_cache import PlanCache

__all__ = [
    "DEFAULT_FUSE_THRESHOLD",
    "ExecutionBackend",
    "ExecutionPlan",
    "NumbaBackend",
    "NumpyBackend",
    "ParallelNumbaBackend",
    "PlanCache",
    "available_backends",
    "compile_count",
    "compile_plan",
    "get_backend",
    "list_backends",
    "register_backend",
]
