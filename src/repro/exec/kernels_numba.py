"""Shared numba kernel tier: JIT sweeps over a plan's flat arrays.

The module defines exactly four kernels, all operating on the flat arrays
of an :class:`~repro.exec.plan.ExecutionPlan`:

* :func:`_sweep` / :func:`_sweep_block` — sequential scalar sweep over a
  *position span* ``[lo, hi)``.  With ``lo=0, hi=n`` this is the whole
  sequential solve (the ``numba`` backend); with a span covering a fused
  run of consecutive small batches it is the fused multi-layer kernel of
  the ``numba-parallel`` backend — a fused run of dependency batches is,
  by construction, nothing but a sequential sweep over their positions.
* :func:`_psweep` / :func:`_psweep_block` — ``prange`` over the rows of
  one dependency batch; rows within a batch are mutually independent, so
  the parallel loop carries no dependencies.

All four share one scalar accumulation order (sum the off-diagonal
products, then subtract once), so every kernel in the tier — sequential,
parallel, fused, single-RHS and block — produces bitwise identical
results (no ``fastmath``, no reassociation).  Relative to
:class:`~repro.exec.backends.NumpyBackend` the results agree to rounding
(NumPy 2.x pairwise/SIMD summation follows an architecture-dependent
reduction order that scalar code cannot portably replicate); the
cross-backend property tests pin that contract.

The kernels are plain Python functions, JIT-wrapped lazily by
:func:`jit_kernels` — so this module imports (and the kernels run,
slowly) without numba installed, which keeps the kernel logic testable
everywhere.

Persistent JIT cache
--------------------
``cache=True`` artifacts are redirected to a stable per-content cache
directory (:func:`jit_cache_dir`) keyed like the
:class:`~repro.exec.plan_cache.PlanCache` memoizes plans: a digest of
this module's source plus the numba/NumPy/Python versions
(:func:`jit_cache_key`).  Any of those changing switches to a fresh
directory instead of serving stale machine code.  A warm process
therefore never recompiles: :func:`warm_kernels` touches every kernel
signature once and :func:`jit_compile_stats` reports the compile count
(``repro bench --report`` asserts it is zero in a second process).
``REPRO_JIT_CACHE_DIR`` overrides the cache base; a user-set
``NUMBA_CACHE_DIR`` is always respected.
"""

from __future__ import annotations

import hashlib
import os
import platform
from pathlib import Path
from types import SimpleNamespace

import numpy as np

from repro.errors import BackendUnavailableError
from repro.obs_gate import get_obs

__all__ = [
    "JIT_CACHE_ENV_VAR",
    "have_numba",
    "jit_cache_dir",
    "jit_cache_key",
    "jit_compile_stats",
    "jit_kernels",
    "warm_kernels",
]

#: Environment variable overriding the persistent JIT cache base directory.
JIT_CACHE_ENV_VAR = "REPRO_JIT_CACHE_DIR"

try:  # one import probe per process; kernels fall back to interpreted mode
    from numba import prange

    _HAVE_NUMBA = True
except ImportError:  # pragma: no cover - env-dependent
    prange = range
    _HAVE_NUMBA = False


def have_numba() -> bool:
    """Whether numba importable here (decided once per process).

    Examples
    --------
    >>> from repro.exec.kernels_numba import have_numba
    >>> have_numba() in (True, False)
    True
    """
    return _HAVE_NUMBA


# ---------------------------------------------------------------------------
# kernel sources (plain Python; jit_kernels() wraps them)
# ---------------------------------------------------------------------------
def _sweep(rows, off_ptr, off_cols, off_vals, diag, b, x, lo, hi):
    """Sequential scalar sweep over positions ``[lo, hi)`` of the plan.

    Position order is a topological execution order, so a straight loop
    is correct for any span aligned to batch boundaries — the whole plan
    (sequential backend) or one fused run of small batches.
    """
    for k in range(lo, hi):
        i = rows[k]
        s = 0.0
        for t in range(off_ptr[k], off_ptr[k + 1]):
            s += off_vals[t] * x[off_cols[t]]
        x[i] = (b[i] - s) / diag[k]


def _sweep_block(rows, off_ptr, off_cols, off_vals, diag, b, x, lo, hi):
    """Block (SpTRSM) variant of :func:`_sweep`: ``b``/``x`` are (n, k).

    Each column runs the exact scalar recurrence of :func:`_sweep`, which
    is what makes block columns bit-equal to single-RHS solves."""
    width = b.shape[1]
    for k in range(lo, hi):
        i = rows[k]
        for c in range(width):
            s = 0.0
            for t in range(off_ptr[k], off_ptr[k + 1]):
                s += off_vals[t] * x[off_cols[t], c]
            x[i, c] = (b[i, c] - s) / diag[k]


def _psweep(rows, off_ptr, off_cols, off_vals, diag, b, x, lo, hi):
    """``prange`` over the rows of one batch (positions ``[lo, hi)``).

    Rows of a batch are mutually independent by plan construction, so the
    parallel loop reads only ``x`` entries written by earlier batches.
    Scalar accumulation is identical to :func:`_sweep` — parallelism
    changes which thread computes a row, never the row's arithmetic."""
    for kk in prange(hi - lo):
        k = lo + kk
        i = rows[k]
        s = 0.0
        for t in range(off_ptr[k], off_ptr[k + 1]):
            s += off_vals[t] * x[off_cols[t]]
        x[i] = (b[i] - s) / diag[k]


def _psweep_block(rows, off_ptr, off_cols, off_vals, diag, b, x, lo, hi):
    """Block (SpTRSM) variant of :func:`_psweep`."""
    width = b.shape[1]
    for kk in prange(hi - lo):
        k = lo + kk
        i = rows[k]
        for c in range(width):
            s = 0.0
            for t in range(off_ptr[k], off_ptr[k + 1]):
                s += off_vals[t] * x[off_cols[t], c]
            x[i, c] = (b[i, c] - s) / diag[k]


# ---------------------------------------------------------------------------
# persistent JIT artifact cache
# ---------------------------------------------------------------------------
def jit_cache_key() -> str:
    """Content key of the persistent JIT cache directory.

    Keyed like the :class:`~repro.exec.plan_cache.PlanCache` keys plans —
    by everything the compiled artifact depends on: this module's source,
    the numba and NumPy versions, and the Python version.  Any change
    switches to a fresh directory instead of serving stale machine code.

    Examples
    --------
    >>> from repro.exec.kernels_numba import jit_cache_key
    >>> key = jit_cache_key()
    >>> len(key), key == jit_cache_key()    # stable within a process
    (16, True)
    """
    if _HAVE_NUMBA:
        import numba

        numba_version = numba.__version__
    else:
        numba_version = "none"
    h = hashlib.sha256()
    h.update(Path(__file__).read_bytes())
    h.update(
        f"|numba={numba_version}|numpy={np.__version__}"
        f"|python={platform.python_version()}".encode()
    )
    return h.hexdigest()[:16]


def jit_cache_dir() -> Path:
    """The stable directory persistent JIT artifacts are written to.

    ``$REPRO_JIT_CACHE_DIR/<key>`` when the env var is set, else
    ``~/.cache/repro/jit/<key>`` (honoring ``XDG_CACHE_HOME``), with
    ``<key>`` from :func:`jit_cache_key`.
    """
    base = os.environ.get(JIT_CACHE_ENV_VAR)
    if base:
        root = Path(base)
    else:
        xdg = os.environ.get("XDG_CACHE_HOME")
        root = (Path(xdg) if xdg else Path.home() / ".cache") / "repro" / "jit"
    return root / jit_cache_key()


def _configure_cache_dir() -> None:  # pragma: no cover - requires numba
    """Point numba's ``cache=True`` machinery at :func:`jit_cache_dir`.

    Must run before the first kernel compiles.  A ``NUMBA_CACHE_DIR`` the
    user set explicitly wins (unless ``REPRO_JIT_CACHE_DIR`` overrides
    it); otherwise artifacts would land next to the installed sources,
    which may be read-only and is not content-keyed."""
    import numba

    if os.environ.get("NUMBA_CACHE_DIR") and not os.environ.get(
        JIT_CACHE_ENV_VAR
    ):
        return
    path = jit_cache_dir()
    path.mkdir(parents=True, exist_ok=True)
    os.environ["NUMBA_CACHE_DIR"] = str(path)
    numba.config.CACHE_DIR = str(path)


_JITTED: SimpleNamespace | None = None


def jit_kernels() -> SimpleNamespace:
    """The four kernels, JIT-wrapped once per process (cached artifacts).

    Returns a namespace with ``sweep``, ``sweep_block`` (sequential,
    ``cache=True``) and ``psweep``, ``psweep_block`` (``parallel=True,
    cache=True``).  Raises :class:`BackendUnavailableError` without
    numba.
    """
    global _JITTED
    if _JITTED is None:
        if not _HAVE_NUMBA:
            raise BackendUnavailableError(
                "the numba kernel tier requires the numba package"
            )
        import numba  # pragma: no cover - requires numba

        obs = get_obs()
        t0 = obs.clock() if obs is not None else 0.0
        _configure_cache_dir()
        jit = numba.njit(cache=True, nogil=True)
        pjit = numba.njit(parallel=True, cache=True, nogil=True)
        _JITTED = SimpleNamespace(
            sweep=jit(_sweep),
            sweep_block=jit(_sweep_block),
            psweep=pjit(_psweep),
            psweep_block=pjit(_psweep_block),
        )
        if obs is not None:
            obs.get_registry().histogram(
                "jit.wrap_seconds"
            ).observe(obs.clock() - t0)
    return _JITTED


def jit_compile_stats() -> dict[str, int]:
    """Compile/cache counters of the wrapped kernels, for warm-start checks.

    ``compiles`` counts actual in-process compilations (numba cache
    misses); ``cache_hits`` counts signatures served from the persistent
    artifact cache.  All zeros before :func:`jit_kernels` ran (or when
    numba is absent) — attribute access is defensive because dispatcher
    internals are not a stable API.
    """
    out = {"compiles": 0, "cache_hits": 0, "signatures": 0}
    if _JITTED is None:
        return out
    for disp in vars(_JITTED).values():  # pragma: no cover - requires numba
        stats = getattr(disp, "stats", None)
        misses = getattr(stats, "cache_misses", None)
        hits = getattr(stats, "cache_hits", None)
        if misses is not None:
            out["compiles"] += int(sum(misses.values()))
        if hits is not None:
            out["cache_hits"] += int(sum(hits.values()))
        out["signatures"] += len(getattr(disp, "signatures", ()))
    obs = get_obs()
    if obs is not None:
        registry = obs.get_registry()
        for name, value in out.items():
            # gauges, not counters: numba's dispatcher stats are already
            # cumulative, so re-reading them must overwrite, not add
            registry.gauge(f"jit.{name}").set(value)
    return out


def warm_kernels() -> dict[str, int]:  # pragma: no cover - requires numba
    """Compile (or cache-load) every kernel signature the backends use.

    Runs each of the four kernels once on a 2-row system with the exact
    array dtypes the plan compiler emits, so a subsequent solve — or a
    second process sharing the persistent cache — performs zero compiles.
    Returns :func:`jit_compile_stats` afterwards.
    """
    obs = get_obs()
    t0 = obs.clock() if obs is not None else 0.0
    k = jit_kernels()
    rows = np.array([0, 1], dtype=np.int64)
    off_ptr = np.array([0, 0, 1], dtype=np.int64)
    off_cols = np.array([0], dtype=np.int64)
    off_vals = np.array([0.5])
    diag = np.array([1.0, 2.0])
    b = np.ones(2)
    x = np.zeros(2)
    k.sweep(rows, off_ptr, off_cols, off_vals, diag, b, x, 0, 2)
    k.psweep(rows, off_ptr, off_cols, off_vals, diag, b, np.zeros(2), 0, 1)
    b2 = np.ones((2, 3))
    k.sweep_block(
        rows, off_ptr, off_cols, off_vals, diag, b2, np.zeros((2, 3)), 0, 2
    )
    k.psweep_block(
        rows, off_ptr, off_cols, off_vals, diag, b2, np.zeros((2, 3)), 0, 1
    )
    if obs is not None:
        obs.get_registry().histogram(
            "jit.warm_seconds"
        ).observe(obs.clock() - t0)
    return jit_compile_stats()
