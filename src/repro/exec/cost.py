"""The shared plan-based cost kernel of the machine simulators.

Before the :mod:`repro.exec` subsystem, each simulator (BSP, asynchronous,
serial, trace) carried its own copy of the per-row cost logic: walk the
schedule's core sequences, re-derive the access streams from CSR, price
them with the cache model.  This module is the single implementation all
of them now share — it consumes an
:class:`~repro.exec.plan.ExecutionPlan`'s per-core program order
(``core_rows``/``core_ptr``) and prices each core's sequence exactly as the
seed simulators did (same :func:`~repro.machine.cache.row_costs_for_sequence`
cache model, so simulated cycle counts are bit-identical).
"""

from __future__ import annotations

import numpy as np

from repro.exec.plan import ExecutionPlan
from repro.machine.cache import row_costs_for_sequence
from repro.machine.model import MachineModel

__all__ = [
    "per_core_costs",
    "bsp_cost_matrix",
    "row_cost_and_position",
]


def per_core_costs(
    plan: ExecutionPlan, machine: MachineModel
) -> list[np.ndarray]:
    """Per-row simulated cycles for each core's program-order sequence.

    Element ``p`` is aligned with ``plan.core_sequence(p)``; empty cores
    yield empty arrays.  Per-core cache state persists across supersteps,
    exactly as in the seed simulators.
    """
    return [
        row_costs_for_sequence(plan.matrix, plan.core_sequence(p), machine)
        for p in range(plan.n_cores)
    ]


def bsp_cost_matrix(
    plan: ExecutionPlan, machine: MachineModel
) -> tuple[np.ndarray, np.ndarray, int]:
    """Superstep-by-core busy cycles of a synchronous execution.

    Returns ``(step_core, core_busy, active_cores)`` where ``step_core``
    is ``(max(n_supersteps, 1), n_cores)`` summed busy cycles,
    ``core_busy`` the per-core totals, and ``active_cores`` the number of
    cores that ever receive work (the barrier fan-in).
    """
    n_steps = plan.n_supersteps
    n_cores = plan.n_cores
    step_core = np.zeros((max(n_steps, 1), n_cores))
    core_busy = np.zeros(n_cores)
    active = 0
    for p, costs in enumerate(per_core_costs(plan, machine)):
        seq = plan.core_sequence(p)
        if seq.size == 0:
            continue
        active += 1
        np.add.at(step_core[:, p], plan.row_step[seq], costs)
        core_busy[p] = costs.sum()
    return step_core, core_busy, active


def row_cost_and_position(
    plan: ExecutionPlan, machine: MachineModel
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row-id cost and program-order position (asynchronous model).

    Returns ``(cost, seq_pos)`` indexed by row id: ``cost[v]`` is the
    simulated cycles of row ``v`` on its own core's sequence, ``seq_pos[v]``
    its position within that sequence.
    """
    n = plan.n
    cost = np.zeros(n)
    seq_pos = np.zeros(n, dtype=np.int64)
    for p, costs in enumerate(per_core_costs(plan, machine)):
        seq = plan.core_sequence(p)
        if seq.size == 0:
            continue
        cost[seq] = costs
        seq_pos[seq] = np.arange(seq.size, dtype=np.int64)
    return cost, seq_pos
