"""Execution-plan compiler: lower a ``(CSRMatrix, Schedule)`` pair once.

The paper's thesis is that SpTRSV throughput is decided in the executed
kernel, not in the schedule data structure.  This module separates the two:
:func:`compile_plan` lowers a triangular matrix plus (optionally) a barrier
schedule into an :class:`ExecutionPlan` — flat, contiguous NumPy arrays that
the backend kernels of :mod:`repro.exec.backends` and the machine-model
cost kernel of :mod:`repro.exec.cost` consume without ever walking CSR rows
in interpreted Python.

Lowered representation
----------------------
*Batches.*  Rows are grouped into *batches*: within one superstep, rows are
layered by their intra-superstep dependencies (``level(v) = 0`` if every
dependency of ``v`` sits in an earlier superstep, else ``1 + max`` over
same-superstep dependencies).  All rows of a batch are mutually independent,
so one batch is solved by a single vectorized gather / segment-sum / scatter
— this is what turns the interpreter-bound per-row loop of the seed kernels
into a handful of NumPy calls per dependency layer.  For valid schedules
(Definition 2.1) intra-superstep dependencies never cross cores, so batching
across the cores of a superstep is exactly the barrier semantics.

*Gather arrays.*  For every row position the off-diagonal column indices and
values are re-laid-out contiguously in batch order (``off_ptr`` /
``off_cols`` / ``off_vals``), the diagonal is pre-extracted (``diag``), and
missing/zero diagonals are detected once at compile time instead of on
every solve.

*Core sequences.*  The per-core execution sequences (program order of the
simulated machine) are concatenated into ``core_rows`` / ``core_ptr`` so the
BSP, asynchronous and serial simulators can share one plan-based cost
kernel.

*Fusion groups.*  Runs of consecutive *small* batches (fewer rows than
``fuse_threshold``) are grouped once at compile time into ``fused_ptr``:
the parallel backend executes each such run as a single sequential JIT
sweep instead of paying one kernel dispatch (and one parallel-region
fork/join) per tiny dependency layer — the known cliff for deep, narrow
DAGs.  Fusion is a pure grouping of the existing batch order, so it never
changes results; a threshold of ``0`` disables it (every batch its own
group).

Compiling is a one-time cost per ``(matrix, schedule)`` pair; every
consumer — repeated triangular solves inside CG/Gauss-Seidel, the machine
simulators, the experiment runner — reuses the plan.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError, MatrixFormatError, \
    SingularMatrixError
from repro.matrix.csr import CSRMatrix
from repro.obs_gate import get_obs
from repro.scheduler.schedule import Schedule
from repro.utils.arrays import segmented_gather

__all__ = ["DEFAULT_FUSE_THRESHOLD", "ExecutionPlan", "compile_count",
           "compile_plan"]

#: Process-wide count of plan lowerings (:func:`compile_plan` bodies
#: actually executed).  The plan-store warm-start contract is asserted
#: against this: a process whose every plan loads from a warm
#: :class:`~repro.store.plan_store.PlanStore` performs **zero**
#: compiles (mirroring the persistent-JIT ``jit_compile_stats``
#: counter).
_N_COMPILES = 0


def compile_count() -> int:
    """Plans lowered by this process so far (cache/store hits excluded).

    Examples
    --------
    >>> from repro.exec import compile_count, compile_plan
    >>> from repro.matrix.generators import narrow_band_lower
    >>> before = compile_count()
    >>> _ = compile_plan(narrow_band_lower(50, 0.2, 5.0, seed=0))
    >>> compile_count() - before
    1
    """
    return _N_COMPILES

#: Batches with fewer rows than this are fusion candidates: runs of
#: consecutive small batches execute as one sequential JIT sweep instead
#: of one parallel kernel dispatch per layer.  Also the parallel
#: backend's cutoff for going wide on an unfused batch — below it, the
#: fork/join overhead of a parallel region exceeds the row work.
DEFAULT_FUSE_THRESHOLD = 64

#: Environment variable overriding the compile-time fusion threshold.
FUSE_ENV_VAR = "REPRO_FUSE_THRESHOLD"


class ExecutionPlan:
    """A compiled, backend-ready lowering of one triangular-solve workload.

    Attributes
    ----------
    matrix:
        The source :class:`~repro.matrix.csr.CSRMatrix` (kept for cost
        models and debugging; kernels only touch the flat arrays below).
    schedule:
        The source :class:`~repro.scheduler.schedule.Schedule`, or ``None``
        for a serial plan.
    direction:
        ``"forward"`` (lower triangular) or ``"backward"`` (upper).
    rows:
        ``int64[n]`` — row ids in execution order, grouped by batch.
    batch_ptr:
        ``int64[n_batches + 1]`` — batch ``t`` spans
        ``rows[batch_ptr[t]:batch_ptr[t+1]]``.
    batch_step:
        ``int64[n_batches]`` — superstep of each batch (batches never span
        supersteps).
    off_ptr / off_cols / off_vals:
        Concatenated off-diagonal gather structure aligned with positions
        in ``rows``: position ``k`` reads
        ``off_cols[off_ptr[k]:off_ptr[k+1]]`` — within a batch these are
        contiguous segments, which is what the backends' segment-sum
        kernels exploit.
    diag:
        ``float64[n]`` — diagonal value per position in ``rows``.
    pos:
        ``int64[n]`` — ``pos[row_id]`` is the row's position in ``rows``.
    core_rows / core_ptr:
        Per-core program order: core ``p`` executes
        ``core_rows[core_ptr[p]:core_ptr[p+1]]``.
    fused_ptr:
        ``int64[n_fused_groups + 1]`` — fusion group ``g`` spans batches
        ``fused_ptr[g]:fused_ptr[g+1]``; groups longer than one batch are
        runs of consecutive batches all smaller than ``fuse_threshold``,
        executed as a single sequential sweep by the parallel backend.
    fuse_threshold:
        The row-count threshold ``fused_ptr`` was computed with (``0``
        when fusion is disabled).
    row_step:
        ``int64[n]`` — superstep per *row id* (all zeros for serial plans).
    singular_row:
        Row id of the first missing/zero diagonal, ``-1`` when the matrix
        is solvable.  :meth:`require_solvable` turns it into a
        :class:`~repro.errors.SingularMatrixError`.

    Examples
    --------
    >>> from repro.exec import compile_plan
    >>> from repro.matrix.generators import narrow_band_lower
    >>> plan = compile_plan(narrow_band_lower(100, 0.1, 5.0, seed=0))
    >>> (plan.n, plan.direction, plan.n_cores)
    (100, 'forward', 1)
    >>> plan.n_batches >= 1
    True
    """

    __slots__ = (
        "matrix",
        "schedule",
        "direction",
        "rows",
        "batch_ptr",
        "batch_step",
        "off_ptr",
        "off_cols",
        "off_vals",
        "diag",
        "pos",
        "core_rows",
        "core_ptr",
        "row_step",
        "fused_ptr",
        "fuse_threshold",
        "singular_row",
        "_singular_reason",
        "provenance",
    )

    def __init__(self, **fields: object) -> None:
        # direct constructions predating the fusion fields stay valid:
        # an absent grouping degrades to one group per batch (unfused)
        if "fused_ptr" not in fields:
            n_batches = fields["batch_ptr"].size - 1
            fields["fused_ptr"] = np.arange(n_batches + 1, dtype=np.int64)
            fields.setdefault("fuse_threshold", 0)
        # where the arrays came from: "compiled" (this process lowered
        # them) or "store" (deserialized from a PlanStore artifact)
        fields.setdefault("provenance", "compiled")
        for name in self.__slots__:
            setattr(self, name, fields[name])

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of rows covered by the plan."""
        return int(self.rows.size)

    @property
    def n_batches(self) -> int:
        """Number of vectorized batches (dependency layers)."""
        return int(self.batch_ptr.size) - 1

    @property
    def n_cores(self) -> int:
        """Core count of the lowered schedule (1 for serial plans)."""
        return int(self.core_ptr.size) - 1

    @property
    def n_supersteps(self) -> int:
        """Superstep count of the lowered schedule (<= 1 for serial)."""
        if self.batch_step.size == 0:
            return 0
        return int(self.batch_step.max()) + 1

    @property
    def n_fused_groups(self) -> int:
        """Number of fusion groups (== ``n_batches`` when unfused)."""
        return int(self.fused_ptr.size) - 1

    @property
    def nnz_off(self) -> int:
        """Off-diagonal entries in the gather structure."""
        return int(self.off_cols.size)

    def core_sequence(self, p: int) -> np.ndarray:
        """Program-order row ids of core ``p``."""
        return self.core_rows[self.core_ptr[p]:self.core_ptr[p + 1]]

    def require_solvable(self) -> None:
        """Raise :class:`SingularMatrixError` if a diagonal entry is
        missing or zero (detected once, at compile time)."""
        if self.singular_row >= 0:
            raise SingularMatrixError(self._singular_reason)

    def require_compatible(self, n: int, direction: str) -> None:
        """Raise :class:`MatrixFormatError` unless this plan was compiled
        for a size-``n`` system in the given sweep ``direction`` — the
        guard every solver entry point applies to caller-supplied plans
        (a mismatched plan would otherwise silently solve the wrong
        system)."""
        if self.direction != direction:
            raise MatrixFormatError(
                f"plan direction mismatch (need {direction}, "
                f"plan is {self.direction})"
            )
        if self.n != n:
            raise MatrixFormatError(
                f"plan covers {self.n} rows, matrix has {n}"
            )

    def __repr__(self) -> str:
        return (
            f"ExecutionPlan(n={self.n}, direction={self.direction!r}, "
            f"batches={self.n_batches}, cores={self.n_cores}, "
            f"supersteps={self.n_supersteps})"
        )


def _levelize(
    n: int,
    dep: np.ndarray,
    consumer: np.ndarray,
    step: np.ndarray,
) -> np.ndarray:
    """Longest-path layer of every row w.r.t. *intra-superstep* deps.

    ``dep[k] -> consumer[k]`` are the dependency edges (off-diagonal
    entries); only edges whose endpoints share a superstep constrain the
    layering — cross-superstep edges are resolved by the barrier.  One
    vectorized Kahn peel per layer; the loop count equals the maximum
    intra-superstep chain length, not the row count.
    """
    level = np.zeros(n, dtype=np.int64)
    if dep.size == 0 or n == 0:
        return level
    intra = step[dep] == step[consumer]
    src = dep[intra]
    dst = consumer[intra]
    if src.size == 0:
        return level
    indeg = np.bincount(dst, minlength=n)
    # CSR-ish adjacency of the intra-step edges, grouped by source
    order = np.argsort(src, kind="stable")
    child = dst[order]
    child_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=child_ptr[1:])

    frontier = np.flatnonzero(indeg == 0)
    lvl = 0
    while frontier.size:
        level[frontier] = lvl
        starts = child_ptr[frontier]
        flat = segmented_gather(starts, child_ptr[frontier + 1] - starts)
        if flat.size == 0:
            break
        kids = child[flat]
        indeg -= np.bincount(kids, minlength=n)
        cand = np.unique(kids)
        frontier = cand[indeg[cand] == 0]
        lvl += 1
    return level


def _fuse_batches(batch_ptr: np.ndarray, threshold: int) -> np.ndarray:
    """Group runs of consecutive small batches into ``fused_ptr``.

    A batch boundary survives unless *both* adjacent batches have fewer
    than ``threshold`` rows — so large batches are always their own group
    (they go to the parallel kernel) and maximal runs of small batches
    collapse into one group (one sequential sweep).  ``threshold <= 0``
    keeps every boundary (unfused).
    """
    n_batches = batch_ptr.size - 1
    if n_batches <= 0:
        return np.zeros(1, dtype=np.int64)
    small = np.diff(batch_ptr) < threshold
    keep = ~(small[1:] & small[:-1])
    return np.concatenate(
        ([0], np.flatnonzero(keep) + 1, [n_batches])
    ).astype(np.int64)


def _resolve_fuse_threshold(fuse_threshold: int | None) -> int:
    """The effective fusion threshold: argument, env var, or default."""
    if fuse_threshold is not None:
        return max(int(fuse_threshold), 0)
    env = os.environ.get(FUSE_ENV_VAR)
    if env:
        try:
            return max(int(env), 0)
        except ValueError:
            raise ConfigurationError(
                f"{FUSE_ENV_VAR}={env!r} is not an integer"
            ) from None
    return DEFAULT_FUSE_THRESHOLD


def compile_plan(
    matrix: CSRMatrix,
    schedule: Schedule | None = None,
    *,
    direction: str = "forward",
    check_diagonal: bool = True,
    fuse_threshold: int | None = None,
    validate: bool | None = None,
) -> ExecutionPlan:
    """Lower ``(matrix, schedule)`` into an :class:`ExecutionPlan`.

    Parameters
    ----------
    matrix:
        Lower-triangular for ``direction="forward"``, upper-triangular for
        ``"backward"``.
    schedule:
        Optional barrier schedule; ``None`` compiles a serial plan (one
        core, one superstep, rows layered by the full dependency DAG —
        i.e. classic level-set execution).
    direction:
        Sweep direction; decides triangularity validation and the
        tie-break order inside a batch (ascending ids forward, descending
        backward, matching the seed executors).
    check_diagonal:
        When true (the solver default) a missing or zero diagonal raises
        :class:`~repro.errors.SingularMatrixError` here, at compile time.
        The machine simulators pass ``False`` — cost models only need the
        structure.
    fuse_threshold:
        Row-count threshold below which consecutive batches are fused
        into one sequential sweep group (see ``fused_ptr``).  ``None``
        (the default) reads ``REPRO_FUSE_THRESHOLD`` from the
        environment, falling back to :data:`DEFAULT_FUSE_THRESHOLD`;
        ``0`` disables fusion.
    validate:
        Run the static verifier (:func:`repro.analysis.verify_plan`)
        on the compiled plan, raising
        :class:`~repro.errors.PlanVerificationError` on any violation.
        ``None`` (the default) defers to the ``REPRO_VALIDATE_PLANS``
        environment gate and is free when the gate is off — the hot
        compile path never imports the verifier.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.exec import compile_plan, get_backend
    >>> from repro.graph.dag import DAG
    >>> from repro.matrix.generators import narrow_band_lower
    >>> from repro.scheduler import GrowLocalScheduler
    >>> from repro.solver.sptrsv import forward_substitution
    >>> L = narrow_band_lower(200, 0.1, 8.0, seed=0)
    >>> schedule = GrowLocalScheduler().schedule(
    ...     DAG.from_lower_triangular(L), 4)
    >>> plan = compile_plan(L, schedule)     # compile once...
    >>> x = get_backend().solve(plan, np.ones(L.n))  # ...execute many
    >>> np.allclose(x, forward_substitution(L, np.ones(L.n)))
    True
    """
    obs = get_obs()
    if obs is None:
        return _compile_plan_impl(
            matrix, schedule,
            direction=direction, check_diagonal=check_diagonal,
            fuse_threshold=fuse_threshold, validate=validate,
        )
    # gate on: wrap lowering in a span and record compile seconds (the
    # clock runs behind the facade, so the disabled path reads no clock
    # at all — the direct-timing-in-hot-path lint invariant)
    with obs.span("exec.compile", n=matrix.n, direction=direction):
        t0 = obs.clock()
        plan = _compile_plan_impl(
            matrix, schedule,
            direction=direction, check_diagonal=check_diagonal,
            fuse_threshold=fuse_threshold, validate=validate,
        )
        obs.get_registry().histogram(
            "exec.compile_seconds"
        ).observe(obs.clock() - t0)
        obs.get_registry().counter("exec.compiles").inc()
        return plan


def _compile_plan_impl(
    matrix: CSRMatrix,
    schedule: Schedule | None = None,
    *,
    direction: str = "forward",
    check_diagonal: bool = True,
    fuse_threshold: int | None = None,
    validate: bool | None = None,
) -> ExecutionPlan:
    """Instrumentation-free body of :func:`compile_plan`."""
    global _N_COMPILES
    _N_COMPILES += 1
    if direction not in ("forward", "backward"):
        raise MatrixFormatError(f"unknown direction {direction!r}")
    if direction == "forward":
        matrix.require_lower_triangular()
    elif not matrix.is_upper_triangular():
        raise MatrixFormatError("matrix is not upper triangular")
    n = matrix.n
    if schedule is not None and schedule.n != n:
        raise MatrixFormatError("schedule size does not match the matrix")

    row_nnz = matrix.row_nnz()
    rows_flat = np.repeat(np.arange(n, dtype=np.int64), row_nnz)

    # --- diagonal extraction + one-time singularity validation ---------
    dpos = matrix.diag_positions()
    diag_by_row = np.zeros(n)
    stored = dpos >= 0
    diag_by_row[stored] = matrix.data[dpos[stored]]
    singular_row = -1
    reason = ""
    missing = np.flatnonzero(~stored)
    if missing.size:
        singular_row = int(missing[0])
        reason = f"row {singular_row} has no stored diagonal entry"
    else:
        zero = np.flatnonzero(diag_by_row == 0.0)
        if zero.size:
            singular_row = int(zero[0])
            reason = f"zero diagonal at row {singular_row}"
    if check_diagonal and singular_row >= 0:
        raise SingularMatrixError(reason)

    # --- off-diagonal structure in row-id order ------------------------
    off_mask = matrix.indices != rows_flat
    off_cols_all = matrix.indices[off_mask]
    off_vals_all = matrix.data[off_mask]
    off_rows_all = rows_flat[off_mask]
    off_counts_row = np.bincount(off_rows_all, minlength=n).astype(np.int64)
    off_indptr_all = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(off_counts_row, out=off_indptr_all[1:])

    # --- batch layout: (superstep, intra-step level, id) ---------------
    step = (
        schedule.supersteps
        if schedule is not None
        else np.zeros(n, dtype=np.int64)
    )
    level = _levelize(n, off_cols_all, off_rows_all, step)
    tie = (
        np.arange(n, dtype=np.int64)
        if direction == "forward"
        else np.arange(n, 0, -1, dtype=np.int64)
    )
    rows = np.lexsort((tie, level, step)).astype(np.int64)
    srt_step = step[rows]
    srt_level = level[rows]
    if n:
        change = np.flatnonzero(
            (srt_step[1:] != srt_step[:-1]) | (srt_level[1:] != srt_level[:-1])
        ) + 1
        batch_ptr = np.concatenate(
            ([0], change, [n])
        ).astype(np.int64)
    else:
        batch_ptr = np.zeros(1, dtype=np.int64)
    batch_step = srt_step[batch_ptr[:-1]] if n else np.zeros(0, np.int64)

    # --- gather arrays re-laid-out in batch order ----------------------
    counts_pos = off_counts_row[rows]
    off_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts_pos, out=off_ptr[1:])
    flat = segmented_gather(off_indptr_all[rows], counts_pos)
    off_cols = off_cols_all[flat]
    off_vals = off_vals_all[flat]

    pos = np.empty(n, dtype=np.int64)
    pos[rows] = np.arange(n, dtype=np.int64)

    # --- per-core program order (cost-model layout) --------------------
    if schedule is not None:
        sequences = schedule.core_sequences()
        core_ptr = np.zeros(len(sequences) + 1, dtype=np.int64)
        np.cumsum([seq.size for seq in sequences], out=core_ptr[1:])
        core_rows = (
            np.concatenate(sequences)
            if sequences
            else np.zeros(0, dtype=np.int64)
        )
    else:
        core_ptr = np.array([0, n], dtype=np.int64)
        core_rows = (
            np.arange(n, dtype=np.int64)
            if direction == "forward"
            else np.arange(n - 1, -1, -1, dtype=np.int64)
        )

    threshold = _resolve_fuse_threshold(fuse_threshold)

    plan = ExecutionPlan(
        matrix=matrix,
        schedule=schedule,
        direction=direction,
        rows=rows,
        batch_ptr=batch_ptr,
        fused_ptr=_fuse_batches(batch_ptr, threshold),
        fuse_threshold=threshold,
        batch_step=batch_step,
        off_ptr=off_ptr,
        off_cols=off_cols,
        off_vals=off_vals,
        diag=diag_by_row[rows],
        pos=pos,
        core_rows=core_rows,
        core_ptr=core_ptr,
        row_step=step,
        singular_row=singular_row,
        _singular_reason=reason,
    )
    if validate is None:
        # cheap env sniff only; the verifier module stays unimported on
        # the hot path unless the gate is actually on
        validate = os.environ.get(
            "REPRO_VALIDATE_PLANS", ""
        ).strip().lower() in ("1", "true", "yes", "on")
    if validate:
        from repro.analysis.verify import check_plan

        # cost-model plans (check_diagonal=False) may legally carry a
        # zero diagonal; require solvability only when the compiler did
        check_plan(
            plan, matrix=matrix, schedule=schedule,
            require_solvable=check_diagonal,
        )
    return plan
