"""Keyed cache for compiled execution artifacts, with hit/miss counters.

Lowering a ``(matrix, schedule)`` pair is a one-time cost, but the seed
experiment runner re-lowered the same pair on every call — once for the
reordering stage, again for the simulation, again for every solve.  A
:class:`PlanCache` memoizes any compiled artifact (plans, reordered
matrices, whole scheduler runs) under a caller-chosen hashable key and
counts hits and misses so callers (and tests) can verify that each
(instance, scheduler, cores) triple is compiled exactly once.
"""

from __future__ import annotations

from typing import Callable, Hashable, TypeVar

__all__ = ["PlanCache"]

T = TypeVar("T")


class PlanCache:
    """A get-or-build memo with hit/miss accounting.

    Examples
    --------
    >>> cache = PlanCache()
    >>> cache.get_or_build("k", lambda: 42)
    42
    >>> cache.get_or_build("k", lambda: 0)  # builder not called again
    42
    >>> (cache.hits, cache.misses)
    (1, 1)
    """

    __slots__ = ("_entries", "hits", "misses", "max_entries")

    def __init__(self, *, max_entries: int | None = None) -> None:
        self._entries: dict[Hashable, object] = {}
        self.hits = 0
        self.misses = 0
        #: Optional bound; when exceeded the oldest entry is evicted
        #: (insertion order — compiled plans are cheap to rebuild, so a
        #: simple FIFO bound is enough to cap memory on huge suites).
        self.max_entries = max_entries

    def get_or_build(self, key: Hashable, builder: Callable[[], T]) -> T:
        """Return the cached value for ``key``, building it on first use."""
        if key in self._entries:
            self.hits += 1
            return self._entries[key]  # type: ignore[return-value]
        self.misses += 1
        value = builder()
        self._entries[key] = value
        if (
            self.max_entries is not None
            and len(self._entries) > self.max_entries
        ):
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        return value

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"PlanCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
