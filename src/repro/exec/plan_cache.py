"""Keyed cache for compiled execution artifacts, with hit/miss counters.

Lowering a ``(matrix, schedule)`` pair is a one-time cost, but the seed
experiment runner re-lowered the same pair on every call — once for the
reordering stage, again for the simulation, again for every solve.  A
:class:`PlanCache` memoizes any compiled artifact (plans, reordered
matrices, whole scheduler runs) under a caller-chosen hashable key and
counts hits and misses so callers (and tests) can verify that each
(instance, scheduler, cores) triple is compiled exactly once.

The cache is **thread-safe** and, when bounded, evicts in **LRU** order:
every hit moves its entry to the most-recently-used end, so the entries
every consumer keeps coming back to (an instance's ``__serial__`` plan,
hit by every scheduler of a suite) survive however many one-shot entries
stream past them.  A plain FIFO bound would evict exactly those hottest,
first-inserted entries first.

Builders run *outside* the lock: compiling a plan can take seconds, and
holding the lock across it would serialize every other thread sharing
the cache (the :class:`~repro.service.SolveService` worker, the suite
runner).  Two threads racing to build the same key may both invoke the
builder; the first insertion wins and both observe the same cached value
afterwards — builders are pure, so the duplicate work is the only cost.

Under the ``REPRO_VALIDATE_PLANS`` environment gate every
:class:`~repro.exec.plan.ExecutionPlan` is statically verified (see
:mod:`repro.analysis.verify`) *before* it becomes observable to other
cache consumers, so a corrupted plan can never be amplified by the
cache; the check also happens outside the lock.

Behind the in-memory tier sits an optional **disk tier**: a
:class:`~repro.store.plan_store.PlanStore` (explicit, or resolved
lazily from ``REPRO_PLAN_STORE_DIR``).  When a lookup carries a
``store_key``, a memory miss consults the store before running the
builder — a warm store turns a process's first compile of every
``(matrix, schedule)`` pair into a load — and a freshly built
:class:`~repro.exec.plan.ExecutionPlan` is persisted best-effort for
the next process.  The store's own integrity gate (mandatory
``check_plan`` plus fingerprint/toolchain/content-hash checks) runs on
every disk hit, and any rejection silently falls through to the
builder, so the disk tier can change *where* a plan comes from but
never *whether* it is sound.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

from repro.obs_gate import get_obs

__all__ = ["PlanCache"]

T = TypeVar("T")


def _maybe_validate(value: object) -> None:
    """Integrity gate: verify plan artifacts before they are published.

    Free when ``REPRO_VALIDATE_PLANS`` is off — the verifier module is
    only imported once the gate is actually on (lazy import keeps the
    hot cache path free of the analysis layer).
    """
    if os.environ.get("REPRO_VALIDATE_PLANS", "").strip().lower() not in (
        "1", "true", "yes", "on"
    ):
        return
    from repro.analysis.verify import maybe_check_cached

    maybe_check_cached(value)


class PlanCache:
    """A thread-safe get-or-build memo with hit/miss accounting.

    Examples
    --------
    >>> cache = PlanCache()
    >>> cache.get_or_build("k", lambda: 42)
    42
    >>> cache.get_or_build("k", lambda: 0)  # builder not called again
    42
    >>> (cache.hits, cache.misses)
    (1, 1)
    """

    __slots__ = ("_entries", "_lock", "hits", "misses", "max_entries",
                 "_obs", "_plan_store", "_plan_store_resolved")

    def __init__(
        self, *, max_entries: int | None = None, plan_store=None
    ) -> None:
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: The obs module when ``REPRO_OBS`` is on, else None; captured
        #: once so the per-lookup cost with the gate off is a single
        #: attribute test.
        self._obs = get_obs()
        #: Optional bound; when exceeded the least-recently-used entry is
        #: evicted (compiled plans are cheap to rebuild, so a bound only
        #: caps memory — but it must not evict the entries a suite hits
        #: on every run, hence LRU rather than FIFO).
        self.max_entries = max_entries
        #: The disk tier: an explicit PlanStore, or resolved from
        #: REPRO_PLAN_STORE_DIR on first use (lazy so constructing a
        #: cache never touches the filesystem or the store layer).
        self._plan_store = plan_store
        self._plan_store_resolved = plan_store is not None

    @property
    def plan_store(self):
        """The disk tier (:class:`~repro.store.plan_store.PlanStore`),
        or ``None`` when neither a store nor ``REPRO_PLAN_STORE_DIR``
        is configured.  Resolved once; an unusable store directory
        disables the tier rather than failing lookups."""
        if not self._plan_store_resolved:
            store = None
            try:
                from repro.store.plan_store import plan_store_from_env

                store = plan_store_from_env()
            except Exception:  # noqa: BLE001 - disk tier is optional
                store = None
            with self._lock:
                if not self._plan_store_resolved:
                    self._plan_store = store
                    self._plan_store_resolved = True
        return self._plan_store

    def get_or_build(
        self,
        key: Hashable,
        builder: Callable[[], T],
        *,
        store_key=None,
        source_matrix=None,
        source_schedule=None,
    ) -> T:
        """Return the cached value for ``key``, building it on first use.

        The builder runs without holding the cache lock; concurrent
        callers racing on the same key may build twice, and the first
        insertion wins (builders must be pure).

        With a ``store_key`` (a :class:`~repro.store.plan_store
        .PlanKey`) and a configured disk tier, a memory miss first
        consults the :class:`~repro.store.plan_store.PlanStore` —
        ``source_matrix``/``source_schedule`` are reattached to and
        cross-checked against the loaded plan — and a freshly built
        plan is persisted best-effort.  Store rejections (corrupt,
        stale, failed ``check_plan``) fall through to the builder.
        """
        obs = self._obs
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                value = self._entries[key]
                if obs is not None:
                    obs.get_registry().counter("plan_cache.hits").inc()
                return value  # type: ignore[return-value]
            self.misses += 1
        if obs is not None:
            obs.get_registry().counter("plan_cache.misses").inc()
        store = self.plan_store if store_key is not None else None
        if store is not None:
            loaded = store.get(
                store_key, matrix=source_matrix, schedule=source_schedule
            )
            if loaded is not None:
                # the store already ran the full integrity gate; insert
                # first-insertion-wins like a built value
                with self._lock:
                    if key in self._entries:
                        self._entries.move_to_end(key)
                        return self._entries[key]  # type: ignore[return-value]
                    self._entries[key] = loaded
                    if (
                        self.max_entries is not None
                        and len(self._entries) > self.max_entries
                    ):
                        self._entries.popitem(last=False)
                return loaded  # type: ignore[return-value]
        if obs is not None:
            t0 = obs.clock()
        value = builder()
        if obs is not None:
            obs.get_registry().histogram(
                "plan_cache.build_seconds"
            ).observe(obs.clock() - t0)
        _maybe_validate(value)
        if store is not None:
            from repro.exec.plan import ExecutionPlan

            if isinstance(value, ExecutionPlan):
                store.put(value, store_key)
        evicted = False
        with self._lock:
            if key in self._entries:
                # another thread built it while we were; keep the first
                # insertion as the canonical value
                self._entries.move_to_end(key)
                return self._entries[key]  # type: ignore[return-value]
            self._entries[key] = value
            if (
                self.max_entries is not None
                and len(self._entries) > self.max_entries
            ):
                self._entries.popitem(last=False)  # least recently used
                evicted = True
        if evicted and obs is not None:
            obs.get_registry().counter("plan_cache.evictions").inc()
        return value

    def put(self, key: Hashable, value: T) -> T:
        """Insert or replace ``key`` directly (no hit/miss accounting).

        For callers that detect a cached value has gone stale (e.g. a
        service re-registering a system key with new inputs) and need to
        swap in a rebuilt artifact; the entry lands at the
        most-recently-used end.
        """
        _maybe_validate(value)
        evicted = False
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if (
                self.max_entries is not None
                and len(self._entries) > self.max_entries
            ):
                self._entries.popitem(last=False)
                evicted = True
        if evicted and self._obs is not None:
            self._obs.get_registry().counter("plan_cache.evictions").inc()
        return value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __repr__(self) -> str:
        return (
            f"PlanCache(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
