"""Keyed cache for compiled execution artifacts, with hit/miss counters.

Lowering a ``(matrix, schedule)`` pair is a one-time cost, but the seed
experiment runner re-lowered the same pair on every call — once for the
reordering stage, again for the simulation, again for every solve.  A
:class:`PlanCache` memoizes any compiled artifact (plans, reordered
matrices, whole scheduler runs) under a caller-chosen hashable key and
counts hits and misses so callers (and tests) can verify that each
(instance, scheduler, cores) triple is compiled exactly once.

The cache is **thread-safe** and, when bounded, evicts in **LRU** order:
every hit moves its entry to the most-recently-used end, so the entries
every consumer keeps coming back to (an instance's ``__serial__`` plan,
hit by every scheduler of a suite) survive however many one-shot entries
stream past them.  A plain FIFO bound would evict exactly those hottest,
first-inserted entries first.

Builders run *outside* the lock: compiling a plan can take seconds, and
holding the lock across it would serialize every other thread sharing
the cache (the :class:`~repro.service.SolveService` worker, the suite
runner).  Two threads racing to build the same key may both invoke the
builder; the first insertion wins and both observe the same cached value
afterwards — builders are pure, so the duplicate work is the only cost.

Under the ``REPRO_VALIDATE_PLANS`` environment gate every
:class:`~repro.exec.plan.ExecutionPlan` is statically verified (see
:mod:`repro.analysis.verify`) *before* it becomes observable to other
cache consumers, so a corrupted plan can never be amplified by the
cache; the check also happens outside the lock.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

from repro.obs_gate import get_obs

__all__ = ["PlanCache"]

T = TypeVar("T")


def _maybe_validate(value: object) -> None:
    """Integrity gate: verify plan artifacts before they are published.

    Free when ``REPRO_VALIDATE_PLANS`` is off — the verifier module is
    only imported once the gate is actually on (lazy import keeps the
    hot cache path free of the analysis layer).
    """
    if os.environ.get("REPRO_VALIDATE_PLANS", "").strip().lower() not in (
        "1", "true", "yes", "on"
    ):
        return
    from repro.analysis.verify import maybe_check_cached

    maybe_check_cached(value)


class PlanCache:
    """A thread-safe get-or-build memo with hit/miss accounting.

    Examples
    --------
    >>> cache = PlanCache()
    >>> cache.get_or_build("k", lambda: 42)
    42
    >>> cache.get_or_build("k", lambda: 0)  # builder not called again
    42
    >>> (cache.hits, cache.misses)
    (1, 1)
    """

    __slots__ = ("_entries", "_lock", "hits", "misses", "max_entries",
                 "_obs")

    def __init__(self, *, max_entries: int | None = None) -> None:
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: The obs module when ``REPRO_OBS`` is on, else None; captured
        #: once so the per-lookup cost with the gate off is a single
        #: attribute test.
        self._obs = get_obs()
        #: Optional bound; when exceeded the least-recently-used entry is
        #: evicted (compiled plans are cheap to rebuild, so a bound only
        #: caps memory — but it must not evict the entries a suite hits
        #: on every run, hence LRU rather than FIFO).
        self.max_entries = max_entries

    def get_or_build(self, key: Hashable, builder: Callable[[], T]) -> T:
        """Return the cached value for ``key``, building it on first use.

        The builder runs without holding the cache lock; concurrent
        callers racing on the same key may build twice, and the first
        insertion wins (builders must be pure).
        """
        obs = self._obs
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                value = self._entries[key]
                if obs is not None:
                    obs.get_registry().counter("plan_cache.hits").inc()
                return value  # type: ignore[return-value]
            self.misses += 1
        if obs is not None:
            obs.get_registry().counter("plan_cache.misses").inc()
            t0 = obs.clock()
        value = builder()
        if obs is not None:
            obs.get_registry().histogram(
                "plan_cache.build_seconds"
            ).observe(obs.clock() - t0)
        _maybe_validate(value)
        evicted = False
        with self._lock:
            if key in self._entries:
                # another thread built it while we were; keep the first
                # insertion as the canonical value
                self._entries.move_to_end(key)
                return self._entries[key]  # type: ignore[return-value]
            self._entries[key] = value
            if (
                self.max_entries is not None
                and len(self._entries) > self.max_entries
            ):
                self._entries.popitem(last=False)  # least recently used
                evicted = True
        if evicted and obs is not None:
            obs.get_registry().counter("plan_cache.evictions").inc()
        return value

    def put(self, key: Hashable, value: T) -> T:
        """Insert or replace ``key`` directly (no hit/miss accounting).

        For callers that detect a cached value has gone stale (e.g. a
        service re-registering a system key with new inputs) and need to
        swap in a rebuilt artifact; the entry lands at the
        most-recently-used end.
        """
        _maybe_validate(value)
        evicted = False
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if (
                self.max_entries is not None
                and len(self._entries) > self.max_entries
            ):
                self._entries.popitem(last=False)
                evicted = True
        if evicted and self._obs is not None:
            self._obs.get_registry().counter("plan_cache.evictions").inc()
        return value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __repr__(self) -> str:
        return (
            f"PlanCache(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
