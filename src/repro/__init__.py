"""repro — Efficient Parallel Scheduling for Sparse Triangular Solvers.

A self-contained reproduction of Böhnlein, Papp, Steiner, Matzoros &
Yzelman, *Efficient Parallel Scheduling for Sparse Triangular Solvers*
(IPDPS 2025, arXiv:2503.05408): the GrowLocal barrier scheduler, Funnel
coarsening, the SpMP/HDagg/BSPg/wavefront baselines, the locality
reordering, block-parallel scheduling, and a simulated multicore machine
for the evaluation.

Quickstart
----------
>>> import numpy as np
>>> from repro import (CSRMatrix, DAG, GrowLocalScheduler,
...                    forward_substitution, scheduled_sptrsv)
>>> from repro.matrix.generators import erdos_renyi_lower
>>> L = erdos_renyi_lower(1000, 2e-3, seed=0)
>>> dag = DAG.from_lower_triangular(L)
>>> schedule = GrowLocalScheduler().schedule(dag, n_cores=8)
>>> b = np.ones(L.n)
>>> x = scheduled_sptrsv(L, b, schedule)
>>> np.allclose(x, forward_substitution(L, b))
True

Subpackages
-----------
``repro.matrix``     sparse matrix substrate (CSR, generators, orderings,
                     IC(0), Matrix-Market I/O)
``repro.graph``      dependence DAGs, wavefronts, transitive reduction,
                     acyclicity-preserving coarsening
``repro.scheduler``  GrowLocal and all baseline schedulers
``repro.exec``       execution plans: schedules lowered once to flat
                     arrays, pluggable backend kernels (numpy/numba),
                     the shared simulator cost kernel, plan caching
``repro.machine``    the simulated multicore (BSP + asynchronous models)
``repro.solver``     SpTRSV kernels, scheduled/threaded execution, PCG,
                     Gauß–Seidel
``repro.service``    concurrent solve service: keyed requests coalesced
                     into SpTRSM micro-batches, per-system stats
``repro.experiments`` datasets, runner (sequential + process-sharded),
                     metrics, tables and figures
``repro.store``      fleet-wide observation store: the learned tuner's
                     training data-plane (merge, coverage prune,
                     staleness-triggered retrain)
``repro.tuner``      autotuner: per-matrix scheduler/backend selection
                     (features -> cost-model prior -> measured racing),
                     persisted tuning profiles, the "auto" scheduler
"""

from repro.errors import (
    ConfigurationError,
    InvalidPartitionError,
    InvalidScheduleError,
    MatrixFormatError,
    NotTriangularError,
    ReproError,
    SingularMatrixError,
)
from repro.exec import (
    ExecutionPlan,
    PlanCache,
    compile_plan,
    get_backend,
    list_backends,
)
from repro.graph.dag import DAG
from repro.machine.model import MachineModel, get_machine, list_machines
from repro.matrix.csr import CSRMatrix
from repro.scheduler import (
    BlockScheduler,
    BSPListScheduler,
    FunnelGrowLocalScheduler,
    GrowLocalScheduler,
    HDaggScheduler,
    Schedule,
    Scheduler,
    SerialScheduler,
    SpMPScheduler,
    WavefrontScheduler,
    make_scheduler,
)
from repro.service import SolveService
from repro.tuner import (
    AutoScheduler,
    Autotuner,
    LearnedPrior,
    LearnedTunerModel,
    TuningDecision,
    TuningProfile,
    extract_features,
    load_model,
    load_profile,
    save_model,
    save_profile,
)
from repro.solver import (
    backward_substitution,
    forward_substitution,
    scheduled_sptrsv,
    threaded_sptrsv,
)

__version__ = "1.0.0"

__all__ = [
    "AutoScheduler",
    "Autotuner",
    "BSPListScheduler",
    "BlockScheduler",
    "CSRMatrix",
    "ConfigurationError",
    "DAG",
    "ExecutionPlan",
    "FunnelGrowLocalScheduler",
    "GrowLocalScheduler",
    "HDaggScheduler",
    "InvalidPartitionError",
    "InvalidScheduleError",
    "LearnedPrior",
    "LearnedTunerModel",
    "MachineModel",
    "MatrixFormatError",
    "NotTriangularError",
    "PlanCache",
    "ReproError",
    "Schedule",
    "Scheduler",
    "SerialScheduler",
    "SingularMatrixError",
    "SolveService",
    "SpMPScheduler",
    "TuningDecision",
    "TuningProfile",
    "WavefrontScheduler",
    "__version__",
    "backward_substitution",
    "compile_plan",
    "extract_features",
    "forward_substitution",
    "get_backend",
    "get_machine",
    "list_backends",
    "list_machines",
    "load_model",
    "load_profile",
    "make_scheduler",
    "save_model",
    "save_profile",
    "scheduled_sptrsv",
    "threaded_sptrsv",
]
