"""DAG substrate: dependence graphs of triangular solves.

A lower-triangular matrix ``L`` induces a DAG with one vertex per row and an
edge ``(j, i)`` for every strict-lower non-zero ``L[i, j]`` (Figure 1.1 of
the paper).  This package provides the DAG container, topological sorting,
wavefront (level-set) analysis, approximate transitive reduction, and the
acyclicity-preserving coarsening machinery of Section 4.
"""

from repro.graph.dag import DAG
from repro.graph.profile import profile_statistics, wavefront_profile
from repro.graph.toposort import is_topological_order, topological_order
from repro.graph.transitive import approximate_transitive_reduction
from repro.graph.wavefront import (
    average_wavefront_size,
    critical_path_length,
    wavefronts,
)

__all__ = [
    "DAG",
    "approximate_transitive_reduction",
    "average_wavefront_size",
    "critical_path_length",
    "is_topological_order",
    "profile_statistics",
    "topological_order",
    "wavefront_profile",
    "wavefronts",
]
