"""Wavefront-profile analysis of dependence DAGs.

The *average* wavefront size (Appendix A) summarizes parallelizability in
one number, but scheduling behaviour depends on the whole width profile:
warm-up ramps (single-source grids), constant-width bands (natural FEM
orders), and spiky irregular profiles schedule very differently.  These
helpers compute the profile and the summary statistics the dataset design
in this reproduction is based on (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.graph.dag import DAG
from repro.graph.wavefront import wavefront_levels

__all__ = ["wavefront_profile", "profile_statistics"]


def wavefront_profile(dag: DAG) -> np.ndarray:
    """Width of every wavefront level, in level order."""
    if dag.n == 0:
        return np.zeros(0, dtype=np.int64)
    level = wavefront_levels(dag)
    widths = np.zeros(int(level.max()) + 1, dtype=np.int64)
    np.add.at(widths, level, 1)
    return widths


def profile_statistics(dag: DAG) -> dict[str, float]:
    """Summary statistics of the wavefront profile.

    Returns
    -------
    dict with keys:
        ``levels``       number of wavefronts;
        ``mean_width``   average wavefront size (the Appendix-A metric);
        ``median_width`` robust central width;
        ``max_width``    peak parallelism;
        ``warmup_levels`` levels before the width first reaches half of
                          the median (the ramp a scheduler must climb —
                          large for single-source grids, ~0 for natural
                          FEM bands);
        ``width_cv``     coefficient of variation of widths (irregularity).
    """
    widths = wavefront_profile(dag)
    if widths.size == 0:
        return {
            "levels": 0, "mean_width": 0.0, "median_width": 0.0,
            "max_width": 0.0, "warmup_levels": 0, "width_cv": 0.0,
        }
    median = float(np.median(widths))
    threshold = max(median / 2.0, 1.0)
    above = np.nonzero(widths >= threshold)[0]
    warmup = int(above[0]) if above.size else int(widths.size)
    mean = float(widths.mean())
    return {
        "levels": int(widths.size),
        "mean_width": mean,
        "median_width": median,
        "max_width": float(widths.max()),
        "warmup_levels": warmup,
        "width_cv": float(widths.std() / mean) if mean else 0.0,
    }
