"""Pulling a coarse-graph schedule back to the original DAG.

After scheduling the coarsened graph, the schedule is "pulled back to the
original graph to obtain the final schedule" (Section 1.1.2): every fine
vertex inherits the core and superstep of its part.  Because parts are
cascades contracted into single vertices, all precedence constraints of
Definition 2.1 remain satisfied — intra-part edges stay on one core within
one superstep, and inter-part edges inherit the coarse schedule's validity.
"""

from __future__ import annotations

from repro.graph.coarsen.quotient import CoarseningResult

__all__ = ["pull_back_schedule"]


def pull_back_schedule(coarsening: CoarseningResult, coarse_schedule):
    """Expand a :class:`~repro.scheduler.schedule.Schedule` of the coarse
    DAG onto the fine DAG.

    Parameters
    ----------
    coarsening:
        Result of :func:`repro.graph.coarsen.quotient.coarsen`.
    coarse_schedule:
        Schedule of ``coarsening.coarse``.

    Returns
    -------
    Schedule
        Schedule of the fine DAG with ``pi(v) = pi(part(v))`` and
        ``sigma(v) = sigma(part(v))``.
    """
    # Imported here to keep the graph package importable without the
    # scheduler package (and to avoid an import cycle).
    from repro.scheduler.schedule import Schedule

    part_of = coarsening.part_of
    return Schedule(
        cores=coarse_schedule.cores[part_of],
        supersteps=coarse_schedule.supersteps[part_of],
        n_cores=coarse_schedule.n_cores,
    )
