"""Cascades (Definition 4.2) and checkers for Proposition 4.3.

A vertex subset ``U`` is a *cascade* iff for every ``v in U`` with an
incoming cut edge and every ``u in U`` with an outgoing cut edge there is a
directed walk from ``v`` to ``u`` in the whole graph ``G``.  Contracting a
partition of cascades preserves acyclicity (Proposition 4.3); the checkers
here verify the hypothesis directly and are used by the tests and by
defensive validation in the coarsening pipeline.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.graph.dag import DAG

__all__ = ["is_cascade", "is_cascade_partition", "reachable_from"]


def reachable_from(dag: DAG, start: int) -> np.ndarray:
    """Boolean mask of vertices reachable from ``start`` (inclusive)."""
    seen = np.zeros(dag.n, dtype=bool)
    seen[start] = True
    queue: deque[int] = deque([start])
    while queue:
        u = queue.popleft()
        for v in dag.children(u):
            v = int(v)
            if not seen[v]:
                seen[v] = True
                queue.append(v)
    return seen


def _cut_vertices(dag: DAG, members: np.ndarray) -> tuple[list[int], list[int]]:
    """Vertices of ``members`` with incoming / outgoing cut edges."""
    in_set = np.zeros(dag.n, dtype=bool)
    in_set[members] = True
    with_in_cut: list[int] = []
    with_out_cut: list[int] = []
    for v in members.tolist():
        if any(not in_set[int(p)] for p in dag.parents(v)):
            with_in_cut.append(v)
        if any(not in_set[int(c)] for c in dag.children(v)):
            with_out_cut.append(v)
    return with_in_cut, with_out_cut


def is_cascade(dag: DAG, vertices: Iterable[int]) -> bool:
    """Check Definition 4.2 for the vertex set ``vertices``.

    For each member ``v`` with an incoming cut edge and member ``u`` with an
    outgoing cut edge, verifies a (possibly trivial) directed walk ``v -> u``
    in the *whole* graph.  Intended for tests and validation; cost is one
    BFS per entry vertex.
    """
    members = np.unique(np.fromiter(vertices, dtype=np.int64))
    if members.size == 0:
        return True
    entries, exits = _cut_vertices(dag, members)
    if not entries or not exits:
        return True
    exit_arr = np.array(exits, dtype=np.int64)
    for v in entries:
        reach = reachable_from(dag, v)
        if not np.all(reach[exit_arr]):
            return False
    return True


def is_cascade_partition(dag: DAG, parts: Sequence[np.ndarray]) -> bool:
    """True iff ``parts`` is a partition of ``V`` into cascades."""
    covered = np.zeros(dag.n, dtype=np.int64)
    for part in parts:
        covered[np.asarray(part, dtype=np.int64)] += 1
    if not np.all(covered == 1):
        return False
    return all(is_cascade(dag, part) for part in parts)
