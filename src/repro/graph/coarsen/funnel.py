"""Funnel partitioning — Algorithm 4.1 of the paper.

An *in-funnel* (Definition 4.4) is a cascade with at most one vertex having
an outgoing cut edge.  Algorithm 4.1 builds an in-funnel partition in
``O(|V| + |E|)``: sweeping vertices in reverse topological order, each
unvisited vertex ``v`` seeds a funnel that grows upwards by absorbing any
parent *all* of whose children are already inside the funnel.  By
construction every absorbed vertex has all children inside the set, so only
the seed can have outgoing cut edges, and every member reaches the seed —
the set is an in-funnel, hence a cascade, hence contraction preserves
acyclicity (Proposition 4.3).

Section 4.2 adds a size/weight constraint so that, e.g., a DAG with a single
sink is not collapsed into one vertex; ``max_weight`` implements it.
Out-funnels are obtained by running the same algorithm on the reversed DAG.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.dag import DAG
from repro.graph.toposort import topological_order

__all__ = [
    "in_funnel_partition",
    "out_funnel_partition",
    "funnel_partition",
    "is_in_funnel",
]


def in_funnel_partition(
    dag: DAG, *, max_weight: int | None = None
) -> list[np.ndarray]:
    """Partition the vertices into in-funnels (Algorithm 4.1).

    Parameters
    ----------
    dag:
        The DAG to partition (must be acyclic).
    max_weight:
        Optional cap on the total vertex weight of each funnel
        (Section 4.2's size constraint).  ``None`` means unbounded.

    Returns
    -------
    list of numpy.ndarray
        Vertex sets; every set is an in-funnel, and together they partition
        ``V``.
    """
    if max_weight is not None and max_weight <= 0:
        raise ConfigurationError("max_weight must be positive")
    order = topological_order(dag)
    position = np.empty(dag.n, dtype=np.int64)
    position[order] = np.arange(dag.n, dtype=np.int64)
    out_degree = dag.out_degrees()
    visited = np.zeros(dag.n, dtype=bool)
    partition: list[np.ndarray] = []

    for v in order[::-1]:  # reverse topological order
        v = int(v)
        if visited[v]:
            continue
        members: list[int] = []
        weight = 0
        children_count: dict[int, int] = {}
        # pop vertices closest to the seed first (max heap on topo position)
        heap: list[tuple[int, int]] = [(-int(position[v]), v)]
        in_queue = {v}
        while heap:
            _, w = heapq.heappop(heap)
            if max_weight is not None and members and (
                weight + int(dag.weights[w]) > max_weight
            ):
                break  # size constraint: stop growing this funnel
            members.append(w)
            weight += int(dag.weights[w])
            for u in dag.parents(w):
                u = int(u)
                if visited[u] or u in in_queue:
                    continue
                children_count[u] = children_count.get(u, 0) + 1
                if children_count[u] == int(out_degree[u]):
                    heapq.heappush(heap, (-int(position[u]), u))
                    in_queue.add(u)
        member_arr = np.array(sorted(members), dtype=np.int64)
        visited[member_arr] = True
        partition.append(member_arr)
    return partition


def out_funnel_partition(
    dag: DAG, *, max_weight: int | None = None
) -> list[np.ndarray]:
    """Partition into out-funnels: Algorithm 4.1 on the reversed DAG."""
    return in_funnel_partition(dag.reversed(), max_weight=max_weight)


def funnel_partition(
    dag: DAG,
    *,
    direction: str = "in",
    max_weight: int | None = None,
) -> list[np.ndarray]:
    """Dispatch helper: ``direction`` is ``"in"`` or ``"out"``."""
    if direction == "in":
        return in_funnel_partition(dag, max_weight=max_weight)
    if direction == "out":
        return out_funnel_partition(dag, max_weight=max_weight)
    raise ConfigurationError(f"unknown funnel direction {direction!r}")


def is_in_funnel(dag: DAG, vertices: np.ndarray) -> bool:
    """Check Definition 4.4 directly: a cascade with at most one vertex
    having an outgoing cut edge."""
    from repro.graph.coarsen.cascade import is_cascade

    members = np.unique(np.asarray(vertices, dtype=np.int64))
    in_set = np.zeros(dag.n, dtype=bool)
    in_set[members] = True
    exits = 0
    for v in members.tolist():
        if any(not in_set[int(c)] for c in dag.children(v)):
            exits += 1
            if exits > 1:
                return False
    return is_cascade(dag, members)
