"""Acyclicity-preserving DAG coarsening (Section 4 of the paper).

* :mod:`~repro.graph.coarsen.cascade` — the cascade predicate
  (Definition 4.2) and a checker for Proposition 4.3's hypothesis;
* :mod:`~repro.graph.coarsen.funnel` — in-/out-funnel partitioning
  (Definition 4.4, Algorithm 4.1) with the size/weight constraint of
  Section 4.2;
* :mod:`~repro.graph.coarsen.quotient` — the coarsened graph ``G // P``
  (Definition 4.1);
* :mod:`~repro.graph.coarsen.pullback` — expanding a schedule of the coarse
  graph back onto the original vertices.
"""

from repro.graph.coarsen.cascade import is_cascade, is_cascade_partition
from repro.graph.coarsen.funnel import (
    funnel_partition,
    in_funnel_partition,
    is_in_funnel,
    out_funnel_partition,
)
from repro.graph.coarsen.pullback import pull_back_schedule
from repro.graph.coarsen.quotient import coarsen, partition_from_parts

__all__ = [
    "coarsen",
    "funnel_partition",
    "in_funnel_partition",
    "is_cascade",
    "is_cascade_partition",
    "is_in_funnel",
    "out_funnel_partition",
    "partition_from_parts",
    "pull_back_schedule",
]
