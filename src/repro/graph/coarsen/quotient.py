"""The coarsened graph ``G // P`` (Definition 4.1).

Vertices of the coarse graph are the parts of the partition; an edge
``(U, W)`` exists iff some fine edge crosses from ``U`` to ``W``
(self-loops removed).  Part weights are the sums of member weights.  When
the partition consists of cascades, ``G // P`` is guaranteed acyclic
(Proposition 4.3); construction verifies acyclicity and raises otherwise,
providing a runtime check of the proposition.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InvalidPartitionError
from repro.graph.dag import DAG
from repro.graph.toposort import topological_order

__all__ = ["coarsen", "partition_from_parts", "CoarseningResult"]


class CoarseningResult:
    """Outcome of a coarsening step.

    Attributes
    ----------
    coarse:
        The coarse DAG ``G // P`` with summed part weights, relabelled so
        that part ids form a topological order of the coarse DAG (required
        by schedulers that use smallest-ID tie-breaking).
    part_of:
        Array mapping each fine vertex to its (relabelled) part id.
    parts:
        For each part id, the sorted array of fine member vertices.
    """

    __slots__ = ("coarse", "part_of", "parts")

    def __init__(
        self, coarse: DAG, part_of: np.ndarray, parts: list[np.ndarray]
    ) -> None:
        self.coarse = coarse
        self.part_of = part_of
        self.parts = parts


def partition_from_parts(n: int, parts: Sequence[np.ndarray]) -> np.ndarray:
    """Convert a list of vertex arrays into a part-id map, validating that
    the arrays form a partition of ``0..n-1``."""
    part_of = np.full(n, -1, dtype=np.int64)
    for pid, part in enumerate(parts):
        arr = np.asarray(part, dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= n):
            raise InvalidPartitionError("part contains out-of-range vertex")
        if np.any(part_of[arr] >= 0):
            raise InvalidPartitionError("parts overlap")
        part_of[arr] = pid
    if np.any(part_of < 0):
        raise InvalidPartitionError("parts do not cover all vertices")
    return part_of


def coarsen(dag: DAG, parts: Sequence[np.ndarray]) -> CoarseningResult:
    """Contract ``dag`` along the partition ``parts``.

    Raises
    ------
    InvalidPartitionError
        If ``parts`` is not a partition, or the quotient contains a cycle
        (i.e. the partition was not made of cascades).
    """
    part_of = partition_from_parts(dag.n, parts)
    k = len(parts)
    src, dst = dag.edges()
    csrc, cdst = part_of[src], part_of[dst]
    keep = csrc != cdst
    weights = np.zeros(k, dtype=np.int64)
    np.add.at(weights, part_of, dag.weights)
    coarse = DAG(k, csrc[keep], cdst[keep], np.maximum(weights, 1),
                 check=False)

    # relabel parts into a topological order of the coarse DAG so that
    # smallest-ID selection remains meaningful after coarsening
    topo = topological_order(coarse)  # raises on cycles
    rank = np.empty(k, dtype=np.int64)
    rank[topo] = np.arange(k, dtype=np.int64)
    csrc2, cdst2 = rank[csrc[keep]], rank[cdst[keep]]
    coarse2 = DAG(k, csrc2, cdst2, np.maximum(weights[topo], 1), check=False)
    part_of2 = rank[part_of]
    parts2: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * k
    for old_pid, part in enumerate(parts):
        parts2[int(rank[old_pid])] = np.sort(
            np.asarray(part, dtype=np.int64)
        )
    return CoarseningResult(coarse2, part_of2, parts2)
