"""Wavefront (level-set) analysis of DAGs.

The *wavefronts* of a DAG are the levels of the longest-path layering:
``level(v) = 0`` for sources and ``1 + max(level(parents))`` otherwise
(the dotted lines of Figure 1.1b).  Wavefront schedulers execute one level
per superstep; the *average wavefront size* ``|V| / (#levels)`` is the
paper's parallelizability metric (Section 6.2, Appendix A), and the barrier
reduction of Table 7.2 is measured relative to the wavefront count.
"""

from __future__ import annotations

import numpy as np

from repro.graph.dag import DAG
from repro.graph.toposort import topological_order

__all__ = [
    "wavefront_levels",
    "wavefronts",
    "critical_path_length",
    "average_wavefront_size",
]


def wavefront_levels(dag: DAG) -> np.ndarray:
    """Level of every vertex: ``0`` for sources, else
    ``1 + max(level of parents)``."""
    order = topological_order(dag)
    level = np.zeros(dag.n, dtype=np.int64)
    for u in order:
        u = int(u)
        lu = level[u]
        for v in dag.children(u):
            v = int(v)
            if level[v] < lu + 1:
                level[v] = lu + 1
    return level


def wavefronts(dag: DAG) -> list[np.ndarray]:
    """The wavefronts as a list of sorted vertex arrays, level by level."""
    level = wavefront_levels(dag)
    n_levels = int(level.max()) + 1 if dag.n else 0
    order = np.argsort(level, kind="stable")
    bounds = np.searchsorted(level[order], np.arange(n_levels + 1))
    return [np.sort(order[bounds[k]:bounds[k + 1]]) for k in range(n_levels)]


def critical_path_length(dag: DAG) -> int:
    """Number of wavefronts = length (in vertices) of the longest path."""
    if dag.n == 0:
        return 0
    return int(wavefront_levels(dag).max()) + 1


def average_wavefront_size(dag: DAG) -> float:
    """``|V| / #wavefronts`` — the parallelizability proxy of Appendix A."""
    if dag.n == 0:
        return 0.0
    return dag.n / critical_path_length(dag)
