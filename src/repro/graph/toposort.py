"""Topological sorting (Kahn's algorithm) and order validation.

Kahn's algorithm [Kah62] is the ``O(|V| + |E|)`` toposort the coarsening
algorithm of the paper (Algorithm 4.1) builds on.  ``topological_order``
also serves as an acyclicity check: a graph with a cycle yields an
incomplete order.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import InvalidPartitionError
from repro.graph.dag import DAG

__all__ = ["topological_order", "is_topological_order", "is_acyclic"]


def topological_order(dag: DAG) -> np.ndarray:
    """Kahn topological order (smallest-index-first tie-breaking).

    Raises
    ------
    InvalidPartitionError
        If the graph contains a cycle (possible for quotient graphs built
        from non-cascade partitions).
    """
    indeg = dag.in_degrees().copy()
    queue: deque[int] = deque(int(v) for v in np.nonzero(indeg == 0)[0])
    order = np.empty(dag.n, dtype=np.int64)
    count = 0
    while queue:
        u = queue.popleft()
        order[count] = u
        count += 1
        for v in dag.children(u):
            v = int(v)
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    if count != dag.n:
        raise InvalidPartitionError("graph contains a cycle")
    return order


def is_acyclic(dag: DAG) -> bool:
    """True iff the directed graph has no cycle."""
    try:
        topological_order(dag)
        return True
    except InvalidPartitionError:
        return False


def is_topological_order(dag: DAG, order: np.ndarray) -> bool:
    """True iff ``order`` lists every vertex once with all edges forward."""
    order = np.asarray(order, dtype=np.int64)
    if order.size != dag.n:
        return False
    position = np.full(dag.n, -1, dtype=np.int64)
    position[order] = np.arange(dag.n, dtype=np.int64)
    if np.any(position < 0):
        return False
    src, dst = dag.edges()
    return bool(np.all(position[src] < position[dst]))
