"""Directed acyclic graph container.

The DAG stores both adjacency directions in CSR-like arrays (parents =
incoming, children = outgoing) because the schedulers sweep one direction
and the ready-set maintenance the other.  Vertex weights default to one and,
for SpTRSV DAGs, equal the row non-zero counts of the *full* matrix
(Section 2.2 of the paper — the paper keeps full-matrix weights even for
block sub-DAGs, cf. Section 3.1).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import MatrixFormatError
from repro.matrix.csr import CSRMatrix

__all__ = ["DAG"]


def _csr_from_edges(
    n: int, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Group ``dst`` by ``src`` into (indptr, targets), sorted within rows."""
    order = np.lexsort((dst, src))
    src_s, dst_s = src[order], dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src_s + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, dst_s


class DAG:
    """A vertex-weighted directed acyclic graph.

    Attributes
    ----------
    n:
        Number of vertices (labelled ``0..n-1``).
    parent_ptr, parent_idx:
        CSR arrays: parents of ``v`` are
        ``parent_idx[parent_ptr[v]:parent_ptr[v+1]]``, sorted.
    child_ptr, child_idx:
        CSR arrays for children, sorted.
    weights:
        Positive vertex weights (compute cost of each vertex).

    Examples
    --------
    >>> from repro import DAG
    >>> from repro.matrix.generators import narrow_band_lower
    >>> dag = DAG.from_lower_triangular(
    ...     narrow_band_lower(100, 0.2, 5.0, seed=0))
    >>> dag.n
    100
    >>> dag.parents(0).size          # row 0 depends on nothing
    0
    """

    __slots__ = (
        "n",
        "parent_ptr",
        "parent_idx",
        "child_ptr",
        "child_idx",
        "weights",
    )

    def __init__(
        self,
        n: int,
        edges_src: np.ndarray,
        edges_dst: np.ndarray,
        weights: np.ndarray | None = None,
        *,
        check: bool = True,
    ) -> None:
        self.n = int(n)
        src = np.asarray(edges_src, dtype=np.int64).ravel()
        dst = np.asarray(edges_dst, dtype=np.int64).ravel()
        if src.size != dst.size:
            raise MatrixFormatError("edge arrays must have equal length")
        if check and src.size:
            if src.min() < 0 or src.max() >= n or dst.min() < 0 or dst.max() >= n:
                raise MatrixFormatError("edge endpoint out of range")
            if np.any(src == dst):
                raise MatrixFormatError("self-loops are not allowed in a DAG")
        # deduplicate edges
        if src.size:
            key = src * np.int64(self.n) + dst
            uniq = np.unique(key)
            src = (uniq // self.n).astype(np.int64)
            dst = (uniq % self.n).astype(np.int64)
        self.child_ptr, self.child_idx = _csr_from_edges(self.n, src, dst)
        self.parent_ptr, self.parent_idx = _csr_from_edges(self.n, dst, src)
        if weights is None:
            self.weights = np.ones(self.n, dtype=np.int64)
        else:
            w = np.asarray(weights, dtype=np.int64)
            if w.shape != (self.n,):
                raise MatrixFormatError("weights must have length n")
            if check and np.any(w <= 0):
                raise MatrixFormatError("vertex weights must be positive")
            self.weights = w

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_lower_triangular(cls, lower: CSRMatrix) -> "DAG":
        """Build the SpTRSV dependence DAG of a lower-triangular matrix.

        Vertex ``i`` is row ``i``; edge ``(j, i)`` for each strict-lower
        stored entry ``L[i, j]``.  Vertex weight = stored entries of the row
        (including the diagonal), per Section 2.2.
        """
        lower.require_lower_triangular()
        rows = np.repeat(
            np.arange(lower.n, dtype=np.int64), lower.row_nnz()
        )
        strict = lower.indices < rows
        src = lower.indices[strict]
        dst = rows[strict]
        weights = np.maximum(lower.row_nnz(), 1)
        return cls(lower.n, src, dst, weights, check=False)

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int]],
        weights: Sequence[int] | np.ndarray | None = None,
    ) -> "DAG":
        """Build from an iterable of ``(src, dst)`` pairs."""
        pairs = list(edges)
        if pairs:
            src = np.array([e[0] for e in pairs], dtype=np.int64)
            dst = np.array([e[1] for e in pairs], dtype=np.int64)
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
        return cls(n, src, dst, None if weights is None else np.asarray(weights))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of edges."""
        return int(self.child_idx.size)

    def parents(self, v: int) -> np.ndarray:
        """Sorted array of parents of ``v``."""
        return self.parent_idx[self.parent_ptr[v]:self.parent_ptr[v + 1]]

    def children(self, v: int) -> np.ndarray:
        """Sorted array of children of ``v``."""
        return self.child_idx[self.child_ptr[v]:self.child_ptr[v + 1]]

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex."""
        return np.diff(self.parent_ptr)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.child_ptr)

    def sources(self) -> np.ndarray:
        """Vertices with no parents."""
        return np.nonzero(self.in_degrees() == 0)[0]

    def sinks(self) -> np.ndarray:
        """Vertices with no children."""
        return np.nonzero(self.out_degrees() == 0)[0]

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """All edges as ``(src, dst)`` arrays (grouped by source)."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.out_degrees())
        return src, self.child_idx.copy()

    def total_weight(self) -> int:
        """Sum of all vertex weights."""
        return int(self.weights.sum())

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the edge ``(u, v)`` exists."""
        ch = self.children(u)
        pos = np.searchsorted(ch, v)
        return bool(pos < ch.size and ch[pos] == v)

    def induced_subgraph(self, vertices: np.ndarray) -> "DAG":
        """Sub-DAG induced by ``vertices`` (relabelled ``0..k-1`` in the
        given order, which must be consistent with a topological order)."""
        verts = np.asarray(vertices, dtype=np.int64)
        label = np.full(self.n, -1, dtype=np.int64)
        label[verts] = np.arange(verts.size, dtype=np.int64)
        src, dst = self.edges()
        keep = (label[src] >= 0) & (label[dst] >= 0)
        return DAG(
            verts.size,
            label[src[keep]],
            label[dst[keep]],
            self.weights[verts],
            check=False,
        )

    def reversed(self) -> "DAG":
        """The DAG with all edges reversed (for backward substitution)."""
        src, dst = self.edges()
        return DAG(self.n, dst, src, self.weights, check=False)

    def __repr__(self) -> str:
        return f"DAG(n={self.n}, m={self.m})"
