"""Approximate transitive reduction: "remove all long edges in triangles".

This is the SpMP preprocessing of Park et al. [PSSD14, Section 2.3], also
applied before Funnel coarsening in the paper (Section 4.2): an edge
``(u, v)`` is redundant for scheduling whenever a two-edge path
``u -> w -> v`` exists, because the dependency is already enforced
transitively.  Removing exactly these "long edges in triangles" costs
``O(sum_v deg(v)^2)`` and is not a full transitive reduction, but removes
the bulk of redundant synchronization in practice.

The reduction never changes reachability, hence scheduling validity is
preserved (any schedule valid for the reduced DAG is valid for the
original).
"""

from __future__ import annotations

import numpy as np

from repro.graph.dag import DAG

__all__ = ["approximate_transitive_reduction", "transitive_edge_mask"]


def transitive_edge_mask(dag: DAG, *, max_work: int | None = None) -> np.ndarray:
    """Boolean mask (aligned with ``dag.edges()``) marking redundant edges.

    An edge ``(u, v)`` is marked iff some other parent ``w`` of ``v`` has
    ``u`` as a parent (i.e. the triangle ``u -> w -> v`` exists).

    Parameters
    ----------
    max_work:
        Optional early-termination budget on the number of parent-pair
        probes, mirroring the paper's remark that the SpMP reduction "may be
        terminated early if a faster runtime is desired".  ``None`` runs the
        full algorithm (the paper's configuration).
    """
    src, dst = dag.edges()
    mask = np.zeros(src.size, dtype=bool)
    if src.size == 0:
        return mask
    # Edge (u, v) lives at a unique position; edges() groups by src with
    # sorted dst, but we mark via a sorted key array + searchsorted.
    keys = src * np.int64(dag.n) + dst
    key_order = np.argsort(keys, kind="stable")
    sorted_keys = keys[key_order]

    parent_ptr, parent_idx = dag.parent_ptr, dag.parent_idx
    work = 0
    # For each vertex v: gather the concatenated parent lists of all its
    # parents (the candidate "grandparent through w" set) and test
    # membership in parents(v) — one vectorized isin per vertex.
    for v in range(dag.n):
        lo, hi = int(parent_ptr[v]), int(parent_ptr[v + 1])
        if hi - lo < 2:
            continue
        pv = parent_idx[lo:hi]
        chunks = [
            parent_idx[parent_ptr[w]:parent_ptr[w + 1]]
            for w in pv.tolist()
        ]
        grand = np.concatenate(chunks)
        work += grand.size
        if max_work is not None and work > max_work:
            return mask
        if grand.size == 0:
            continue
        # parents whose edge to v is covered by a 2-path u -> w -> v
        covered = np.intersect1d(pv, grand)
        if covered.size:
            edge_keys = covered * np.int64(dag.n) + v
            pos = np.searchsorted(sorted_keys, edge_keys)
            mask[key_order[pos]] = True
    return mask


def approximate_transitive_reduction(
    dag: DAG, *, max_work: int | None = None
) -> DAG:
    """Return a new DAG with all "long edges in triangles" removed.

    Reachability (and therefore the set of valid schedules) is unchanged;
    the number of edges — and hence the synchronization the schedulers must
    respect — can drop substantially.
    """
    mask = transitive_edge_mask(dag, max_work=max_work)
    src, dst = dag.edges()
    keep = ~mask
    return DAG(dag.n, src[keep], dst[keep], dag.weights, check=False)
