"""Per-system serving statistics of a :class:`~repro.service.SolveService`.

A :class:`SystemStats` is an immutable snapshot taken under the service
lock: counters never tear, and derived rates are computed on the frozen
values.  Latency is measured from enqueue to future resolution (what a
client observes); solve time is the kernel-only busy time, so
``throughput_rps`` is the sustained rate the execution backend achieves
for this system when saturated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SystemStats"]


@dataclass(frozen=True)
class SystemStats:
    """Snapshot of one registered system's serving counters.

    Attributes
    ----------
    key:
        The system's registration key.
    n_rows:
        Problem size of the registered system.
    n_requests:
        Solve requests completed (each RHS counts once, also inside a
        batch).
    n_batches:
        Backend invocations: micro-batched SpTRSM calls plus single-RHS
        solves.
    max_batch_size:
        Largest micro-batch executed so far.
    total_latency_seconds:
        Summed enqueue-to-result latency over all completed requests.
    total_solve_seconds:
        Summed backend busy time over all batches.
    total_queue_wait_seconds:
        Summed enqueue-to-execute wait over all completed requests —
        the head-of-line-blocking component of latency.  Populated
        even without ``REPRO_OBS`` (cheap counter).
    n_deadline_misses:
        Requests failed with
        :class:`~repro.errors.DeadlineExceededError` because their
        deadline passed while queued.
    n_admission_rejections:
        Requests refused at submission time with
        :class:`~repro.errors.AdmissionError` (bounded-queue
        overflow); they never entered the queue.
    tuned_scheduler:
        Scheduler the autotuner picked for this system (``None`` when
        the system was registered with an explicit schedule).
    n_plan_swaps:
        Times the serving plan was hot-swapped (auto-registration swaps
        once, from the prior's plan to the race winner's).
    arm_seconds:
        Per-arm measured seconds from the tuning race (the online arm
        statistics; empty for explicitly scheduled systems).
    latency_hist / batch_hist / queue_wait_hist:
        Histogram snapshots (see :mod:`repro.obs.metrics`) of
        per-request latency, micro-batch size and per-request
        queue wait, populated only when the ``REPRO_OBS`` gate is on —
        ``None`` otherwise.  They feed the ``latency_p50_s``/
        ``latency_p99_s``/``batch_p50``/``batch_p99``/
        ``queue_wait_p50_s``/``queue_wait_p99_s`` properties and the
        matching :meth:`as_row` keys.
    backend:
        Resolved execution-backend name every batch of this system ran
        on (``"numpy"``, ``"numba"``, ``"numba-parallel"``, ...), so
        throughput numbers are attributable to a kernel tier.
    plan_source:
        Where the serving plan's arrays came from: ``"compiled"``
        (this process lowered them) or ``"store"`` (deserialized from
        a :class:`~repro.store.plan_store.PlanStore` artifact behind
        the mandatory ``check_plan`` gate) — so zero-compile cold
        starts are attributable per system.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.matrix.generators import narrow_band_lower
    >>> from repro.service import SolveService
    >>> L = narrow_band_lower(80, 0.2, 5.0, seed=0)
    >>> with SolveService() as svc:
    ...     _ = svc.register("sys", L)
    ...     _ = svc.solve("sys", np.ones(80))
    ...     stats = svc.stats("sys")
    >>> (stats.n_requests, stats.n_rows)
    (1, 80)
    >>> stats.avg_batch_size
    1.0
    """

    key: object
    n_rows: int
    n_requests: int = 0
    n_batches: int = 0
    max_batch_size: int = 0
    total_latency_seconds: float = 0.0
    total_solve_seconds: float = 0.0
    total_queue_wait_seconds: float = 0.0
    n_deadline_misses: int = 0
    n_admission_rejections: int = 0
    tuned_scheduler: str | None = None
    n_plan_swaps: int = 0
    arm_seconds: dict = field(default_factory=dict)
    backend: str = ""
    plan_source: str = ""
    latency_hist: dict | None = None
    batch_hist: dict | None = None
    queue_wait_hist: dict | None = None

    @staticmethod
    def _percentile(hist: dict | None, q: float) -> float | None:
        if hist is None:
            return None
        # deferred import: only reachable when the obs subsystem built
        # the snapshot, so the gate-off path never loads repro.obs
        from repro.obs.metrics import snapshot_percentile

        return snapshot_percentile(hist, q)

    @property
    def latency_p50_s(self) -> float | None:
        """Median request latency (``None`` without ``REPRO_OBS``)."""
        return self._percentile(self.latency_hist, 0.50)

    @property
    def latency_p99_s(self) -> float | None:
        """p99 request latency (``None`` without ``REPRO_OBS``)."""
        return self._percentile(self.latency_hist, 0.99)

    @property
    def batch_p50(self) -> float | None:
        """Median micro-batch size (``None`` without ``REPRO_OBS``)."""
        return self._percentile(self.batch_hist, 0.50)

    @property
    def batch_p99(self) -> float | None:
        """p99 micro-batch size (``None`` without ``REPRO_OBS``)."""
        return self._percentile(self.batch_hist, 0.99)

    @property
    def queue_wait_p50_s(self) -> float | None:
        """Median enqueue-to-execute wait (``None`` without obs)."""
        return self._percentile(self.queue_wait_hist, 0.50)

    @property
    def queue_wait_p99_s(self) -> float | None:
        """p99 enqueue-to-execute wait (``None`` without obs)."""
        return self._percentile(self.queue_wait_hist, 0.99)

    @property
    def avg_queue_wait_seconds(self) -> float:
        """Mean enqueue-to-execute wait per completed request."""
        return (
            self.total_queue_wait_seconds / self.n_requests
            if self.n_requests
            else 0.0
        )

    @property
    def avg_batch_size(self) -> float:
        """Mean requests per backend invocation (1.0 = no coalescing)."""
        return self.n_requests / self.n_batches if self.n_batches else 0.0

    @property
    def avg_latency_seconds(self) -> float:
        """Mean enqueue-to-result latency per request."""
        return (
            self.total_latency_seconds / self.n_requests
            if self.n_requests
            else 0.0
        )

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of backend busy time."""
        return (
            self.n_requests / self.total_solve_seconds
            if self.total_solve_seconds > 0.0
            else 0.0
        )

    def as_row(self) -> dict[str, object]:
        """Plain-dict view (counters plus derived rates) for tables.

        Percentile columns (``latency_p50_s``, ``latency_p99_s``,
        ``batch_p50``, ``batch_p99``) appear only when the snapshot
        carries obs histograms, keeping gate-off rows bit-compatible
        with earlier releases.
        """
        row = {
            "key": self.key,
            "n_rows": self.n_rows,
            "requests": self.n_requests,
            "batches": self.n_batches,
            "avg_batch": self.avg_batch_size,
            "max_batch": self.max_batch_size,
            "avg_latency_s": self.avg_latency_seconds,
            "avg_queue_wait_s": self.avg_queue_wait_seconds,
            "throughput_rps": self.throughput_rps,
            "deadline_misses": self.n_deadline_misses,
            "admission_rejections": self.n_admission_rejections,
            "tuned_scheduler": self.tuned_scheduler,
            "plan_swaps": self.n_plan_swaps,
            "backend": self.backend,
            "plan_source": self.plan_source,
        }
        if self.latency_hist is not None:
            row["latency_p50_s"] = self.latency_p50_s
            row["latency_p99_s"] = self.latency_p99_s
        if self.batch_hist is not None:
            row["batch_p50"] = self.batch_p50
            row["batch_p99"] = self.batch_p99
        if self.queue_wait_hist is not None:
            row["queue_wait_p50_s"] = self.queue_wait_p50_s
            row["queue_wait_p99_s"] = self.queue_wait_p99_s
        return row
