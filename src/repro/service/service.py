"""The :class:`SolveService`: keyed, coalescing, concurrent SpTRSV serving.

Architecture
------------
Clients call :meth:`SolveService.submit` (or the blocking
:meth:`~SolveService.solve`) with a system key and a single right-hand
side; they get a :class:`concurrent.futures.Future` back.  A dedicated
worker thread drains the request queue: the head request plus every
*consecutive* queued request for the same system (up to ``max_batch``)
becomes one micro-batch, column-stacked into an ``(n, k)`` block and
executed with a single :meth:`~repro.exec.backends.ExecutionBackend
.solve_block` call — one vectorized sweep over the plan's dependency
layers for all ``k`` clients.  Head-run coalescing keeps completion
order identical to submission order, so serving is deterministic.

Numerically the batched path is *bit-equal* to solving each request
alone: the block kernel accumulates each column's contributions in the
same order as the single-RHS kernel (the oracle test pins this down).

Plans are compiled once per registered system through a shared
thread-safe :class:`~repro.exec.PlanCache` — pass the same cache to
several services (or to the experiment runner) to share lowering work
across consumers.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future

import numpy as np

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeadlineExceededError,
    MatrixFormatError,
    ServiceClosedError,
)
from repro.exec import (
    ExecutionBackend,
    ExecutionPlan,
    PlanCache,
    compile_plan,
    get_backend,
)
from repro.matrix.csr import CSRMatrix
from repro.obs_gate import get_obs
from repro.scheduler.schedule import Schedule
from repro.service.stats import SystemStats

__all__ = ["SolveService"]

#: Bucket spec for the per-system batch-size histogram (``REPRO_OBS``):
#: batch sizes are small integers, so the latency default (1e-7..1e4 s)
#: would waste resolution.  Shared constants keep every shard's spec
#: identical — the precondition for snapshot merging.
_BATCH_HIST_SPEC = {"lo": 0.5, "hi": 4096.0, "per_decade": 16}


class _System:
    """A registered solve target: one compiled plan plus live counters."""

    __slots__ = (
        "key",
        "plan",
        "n_requests",
        "n_batches",
        "max_batch_size",
        "total_latency_seconds",
        "total_solve_seconds",
        "total_queue_wait_seconds",
        "n_deadline_misses",
        "n_admission_rejections",
        "max_batch",
        "tuned_scheduler",
        "n_plan_swaps",
        "arms",
        "latency_hist",
        "batch_hist",
        "queue_wait_hist",
    )

    def __init__(self, key: object, plan: ExecutionPlan) -> None:
        self.key = key
        self.plan = plan
        self.n_requests = 0
        self.n_batches = 0
        self.max_batch_size = 0
        self.total_latency_seconds = 0.0
        self.total_solve_seconds = 0.0
        #: Cheap always-on counters: summed enqueue-to-execute wait,
        #: deadline-failed requests and admission-rejected submissions.
        #: These stay populated with ``REPRO_OBS`` off — head-of-line
        #: blocking must be visible in plain ``stats()`` output.
        self.total_queue_wait_seconds = 0.0
        self.n_deadline_misses = 0
        self.n_admission_rejections = 0
        #: Per-system micro-batch bound (None: the service default).
        self.max_batch: int | None = None
        #: Autotuner outcome (None for explicitly scheduled systems).
        self.tuned_scheduler: str | None = None
        self.n_plan_swaps = 0
        #: Per-arm measured seconds from the tuning race.
        self.arms: dict[str, float] = {}
        #: Obs histograms (``REPRO_OBS`` on), else None — live in the
        #: process registry under ``system=<key>`` labels.
        self.latency_hist = None
        self.batch_hist = None
        self.queue_wait_hist = None

    def snapshot(self, backend: str = "") -> SystemStats:
        return SystemStats(
            key=self.key,
            n_rows=self.plan.n,
            n_requests=self.n_requests,
            n_batches=self.n_batches,
            max_batch_size=self.max_batch_size,
            total_latency_seconds=self.total_latency_seconds,
            total_solve_seconds=self.total_solve_seconds,
            total_queue_wait_seconds=self.total_queue_wait_seconds,
            n_deadline_misses=self.n_deadline_misses,
            n_admission_rejections=self.n_admission_rejections,
            tuned_scheduler=self.tuned_scheduler,
            n_plan_swaps=self.n_plan_swaps,
            arm_seconds=dict(self.arms),
            backend=backend,
            plan_source=getattr(self.plan, "provenance", "compiled"),
            latency_hist=(
                self.latency_hist._snapshot()
                if self.latency_hist is not None else None
            ),
            batch_hist=(
                self.batch_hist._snapshot()
                if self.batch_hist is not None else None
            ),
            queue_wait_hist=(
                self.queue_wait_hist._snapshot()
                if self.queue_wait_hist is not None else None
            ),
        )


class _Request:
    __slots__ = ("system", "b", "future", "enqueued_at", "deadline")

    def __init__(
        self,
        system: _System,
        b: np.ndarray,
        future: Future,
        enqueued_at: float,
        deadline: float | None = None,
    ) -> None:
        self.system = system
        self.b = b
        self.future = future
        self.enqueued_at = enqueued_at
        #: Absolute ``perf_counter`` instant after which the worker
        #: fails this request instead of executing it (None: no bound).
        self.deadline = deadline

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class SolveService:
    """Serve keyed triangular-solve requests with micro-batching.

    Parameters
    ----------
    backend:
        Execution backend name or instance (default: auto-selected, see
        :func:`repro.exec.get_backend`).
    max_batch:
        Largest micro-batch the worker coalesces into one
        ``solve_block`` call.
    max_queue:
        Admission bound: largest number of requests allowed to wait in
        the queue at once (default None: unbounded).  A submission that
        would overflow it raises
        :class:`~repro.errors.AdmissionError` immediately — enqueueing
        nothing — so sustained overload surfaces as backpressure
        instead of unbounded memory growth and tail latency.
    plan_cache:
        Shared thread-safe :class:`~repro.exec.PlanCache` used to lower
        registered systems; a private cache is created when omitted.
    store:
        Optional :class:`~repro.store.ObservationStore`: every
        ``schedule="auto"`` registration appends the **genuine measured
        seconds** of its hot-swap race to it (tagged
        ``source="service"``), so serving traffic keeps training the
        learned prior.  Only real race measurements enter the store —
        never the prior's predictions (the tuner's
        ``_record_observations`` invariant).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.matrix.generators import erdos_renyi_lower
    >>> from repro.service import SolveService
    >>> L = erdos_renyi_lower(100, 0.05, seed=0)
    >>> with SolveService() as svc:
    ...     _ = svc.register("sys", L)
    ...     x = svc.solve("sys", np.ones(100))
    >>> x.shape
    (100,)
    """

    def __init__(
        self,
        *,
        backend: str | None = None,
        max_batch: int = 64,
        max_queue: int | None = None,
        plan_cache: PlanCache | None = None,
        store=None,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1 (or None)")
        self._backend = get_backend(backend)
        self._max_batch = int(max_batch)
        self._max_queue = int(max_queue) if max_queue is not None else None
        self._cache = plan_cache if plan_cache is not None else PlanCache()
        self._store = store
        #: The obs module when ``REPRO_OBS`` is on, else None.  Captured
        #: once: per-request paths test one attribute instead of
        #: re-reading the environment.
        self._obs = get_obs()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._systems: dict[object, _System] = {}
        self._queue: deque[_Request] = deque()
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="repro-solve-service", daemon=True
        )
        self._worker.start()

    def _make_system(self, key: object, plan: ExecutionPlan) -> _System:
        """Build a system record, attaching obs histograms when enabled."""
        system = _System(key, plan)
        if self._obs is not None:
            registry = self._obs.get_registry()
            system.latency_hist = registry.histogram(
                "service.request_latency_seconds", system=str(key)
            )
            system.batch_hist = registry.histogram(
                "service.batch_size", system=str(key), **_BATCH_HIST_SPEC
            )
            system.queue_wait_hist = registry.histogram(
                "service.queue_wait_seconds", system=str(key)
            )
        return system

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        key: object,
        matrix: CSRMatrix,
        schedule: Schedule | str | None = None,
        *,
        direction: str = "forward",
        plan: ExecutionPlan | None = None,
        machine=None,
        tuner=None,
        n_cores: int | None = None,
        profile=None,
    ) -> ExecutionPlan:
        """Register ``(matrix, schedule)`` as a solve target under ``key``.

        The pair is lowered through the shared plan cache (cache key
        ``("__service__", key, direction)``), so re-creating a service —
        or running several — over the same cache compiles each system
        once.  A cached plan is only reused when it was compiled for
        *these* ``matrix``/``schedule`` objects; re-registering a key
        with different inputs compiles fresh instead of silently serving
        the stale plan.  Pass a precompiled ``plan`` to bypass the cache
        (it is validated against ``matrix``).  Singular systems are
        rejected here, at registration, never in the worker thread.
        Returns the compiled plan.

        ``schedule="auto"`` hands the choice to the autotuner
        (:mod:`repro.tuner`): the system starts serving on the cost
        model's prior pick immediately, the tuner races the finalists
        with measured micro-runs against this service's backend, and the
        winning plan is hot-swapped in (see :meth:`hot_swap`).  The
        race's per-arm statistics, the chosen scheduler and the swap
        count are surfaced in :meth:`stats`; the tuned ``max_batch``
        bound overrides the service default for this system.  Optional
        ``machine`` (cost-model preset), ``tuner``
        (:class:`~repro.tuner.Autotuner`) and ``n_cores`` configure the
        tuning run; a ``profile``
        (:class:`~repro.tuner.TuningProfile`) warm-starts it — a stored
        decision with matching features installs without racing, and
        fresh decisions are recorded back, so re-registering a known
        fleet runs **zero races**.  With a service-level ``store`` the
        race's genuine measured seconds are appended as training
        observations (warm starts append nothing).
        """
        if isinstance(schedule, str):
            if schedule != "auto":
                raise ConfigurationError(
                    f"unknown schedule spec {schedule!r}; pass a "
                    "Schedule, None, or 'auto'"
                )
            if plan is not None:
                raise ConfigurationError(
                    "schedule='auto' and a precompiled plan are mutually "
                    "exclusive"
                )
            return self._register_auto(
                key, matrix,
                direction=direction, machine=machine, tuner=tuner,
                n_cores=n_cores, profile=profile,
            )
        if profile is not None:
            raise ConfigurationError(
                "a tuning profile is only meaningful with schedule='auto'"
            )
        if plan is not None:
            plan.require_compatible(matrix.n, direction)
            if plan.matrix is not matrix:
                raise MatrixFormatError(
                    "precompiled plan was built from a different matrix "
                    "than the one being registered"
                )
        else:
            cache_key = ("__service__", key, direction)
            store_key = None
            if self._cache.plan_store is not None:
                # deferred import: the store layer is only touched when
                # a disk tier is configured (REPRO_PLAN_STORE_DIR)
                from repro.store.plan_store import plan_store_key

                store_key = plan_store_key(
                    matrix, schedule, direction=direction
                )
            plan = self._cache.get_or_build(
                cache_key,
                lambda: compile_plan(matrix, schedule, direction=direction),
                store_key=store_key,
                source_matrix=matrix,
                source_schedule=schedule,
            )
            if plan.matrix is not matrix or plan.schedule is not schedule:
                # cache hit for a different system under the same key:
                # compile fresh and replace the stale entry, so repeat
                # registrations of the new system hit again
                plan = self._cache.put(
                    cache_key,
                    compile_plan(matrix, schedule, direction=direction),
                )
        plan.require_solvable()
        with self._cond:
            if self._closed:
                raise ConfigurationError(
                    "service is closed; register() after close() is not "
                    "allowed"
                )
            self._systems[key] = self._make_system(key, plan)
        return plan

    def _register_auto(
        self,
        key: object,
        matrix: CSRMatrix,
        *,
        direction: str,
        machine,
        tuner,
        n_cores: int | None,
        profile=None,
    ) -> ExecutionPlan:
        """Tuner-backed registration (see :meth:`register`)."""
        # local imports: the tuner layer sits above the service and
        # importing it at module scope would be circular
        from repro.experiments.datasets import DatasetInstance
        from repro.experiments.runner import compiled_entry
        from repro.machine.model import get_machine
        from repro.scheduler.registry import make_scheduler
        from repro.tuner.auto import (
            DEFAULT_MACHINE,
            Autotuner,
            clip_cores,
            matrix_fingerprint,
        )
        from repro.tuner.features import extract_features

        if direction != "forward":
            raise ConfigurationError(
                "schedule='auto' tunes forward (lower-triangular) "
                "systems only"
            )
        if machine is None:
            machine = get_machine(DEFAULT_MACHINE)
        if tuner is None:
            tuner = Autotuner(backend=self._backend.name)
        elif tuner.backend is None:
            # measured racing must time the backend this service will
            # actually serve with, not whatever auto-selection prefers
            tuner.backend = self._backend.name
        cores = clip_cores(machine, n_cores)
        # the instance name keys the shared plan cache, so it must be
        # derived from the matrix *content*: re-registering a key (or a
        # second service sharing the cache) with a different same-size
        # matrix would otherwise hit the previous matrix's plans and
        # silently serve wrong solutions
        inst = DatasetInstance(
            f"__auto__{matrix_fingerprint(matrix)}", matrix
        )

        # 0. warm start: a profile decision whose features still match
        # (and that is admissible under this tuner's configuration)
        # installs directly — no prior ranking, no extra compile, no
        # race, nothing appended to the store
        features = extract_features(inst, n_cores=cores)
        warm = tuner.probe_profile(
            inst, machine, n_cores=cores, reorder=False,
            profile=profile, features=features,
        )
        if warm is not None:
            warm_plan = compiled_entry(
                inst, make_scheduler(warm.scheduler), cores, False,
                self._cache,
            ).plan
            warm_plan.require_solvable()
            with self._cond:
                if self._closed:
                    raise ConfigurationError(
                        "service is closed; register() after close() "
                        "is not allowed"
                    )
                system = self._make_system(key, warm_plan)
                system.tuned_scheduler = warm.scheduler
                system.max_batch = warm.max_batch
                self._systems[key] = system
            return warm_plan

        # 1. prior: start serving on the prior's pick right away (the
        # tuner's configured prior — cost model, or learned inference
        # with cost-model fallback).  reorder=False throughout — a
        # Section 5-reordered plan solves a symmetrically permuted
        # system, not the one being registered.  Features are extracted
        # once above and shared by the ranking and the tuning run.
        scores = tuner.rank_prior(
            inst, machine,
            n_cores=cores, reorder=False, plan_cache=self._cache,
            features=features,
        )
        prior = scores[0]
        prior_plan = compiled_entry(
            inst, make_scheduler(prior.name), cores, False, self._cache
        ).plan
        prior_plan.require_solvable()
        with self._cond:
            if self._closed:
                raise ConfigurationError(
                    "service is closed; register() after close() is not "
                    "allowed"
                )
            system = self._make_system(key, prior_plan)
            self._systems[key] = system

        # 2. race the finalists (passing the prior's ranking so the
        # candidate simulations run once, not twice), then hot-swap the
        # winner in while the system keeps serving.  A profile hit
        # warm-starts instead — zero races — and appends nothing to the
        # store; a cold race records its genuine measured seconds
        # there, stamped with serving provenance (the source override
        # is scoped to this registration: a caller-supplied tuner keeps
        # its own tag for later non-service runs).
        races_before = tuner.races_run
        prev_source = tuner.observation_source
        if self._store is not None:
            tuner.observation_source = "service"
        try:
            decision = tuner.tune(
                inst, machine,
                n_cores=cores, reorder=False, plan_cache=self._cache,
                prior_scores=scores, features=features,
                profile=profile, store=self._store,
            )
        finally:
            tuner.observation_source = prev_source
        if self._store is not None:
            # persist the race's observations now: a service is long-
            # lived and nothing else guarantees a flush before exit
            self._store.flush()
        winner_plan = compiled_entry(
            inst, make_scheduler(decision.scheduler), cores, False,
            self._cache,
        ).plan
        raced = tuner.races_run > races_before
        arms = {
            name: values[-1]
            for name, values in (
                tuner.last_race.measurements
                if raced and tuner.last_race else {}
            ).items()
        }
        with self._cond:
            system.tuned_scheduler = decision.scheduler
            system.max_batch = decision.max_batch
            system.arms = arms
        if winner_plan is not prior_plan:
            self.hot_swap(key, winner_plan)
        return winner_plan

    def hot_swap(self, key: object, plan: ExecutionPlan) -> ExecutionPlan:
        """Atomically replace the serving plan of a registered system.

        The new plan must be a different *schedule* of the **same
        system**: it is validated against the installed plan's size,
        sweep direction and matrix (identity, falling back to content
        equality for plans recompiled elsewhere) — a plan of a
        different same-size matrix would otherwise silently serve wrong
        solutions, the guard the explicit-plan ``register`` path
        applies.  The auto-registration path swaps the race winner in
        this way, and callers can re-tune a live system and swap
        likewise.  Requests already queued execute with
        whichever plan is installed when their batch executes; each
        result is bit-equal to solving that plan directly — the worker
        loads the plan reference once per batch, and plans themselves
        are immutable.
        """
        plan.require_solvable()
        with self._cond:
            if self._closed:
                raise ConfigurationError(
                    "service is closed; hot_swap() after close() is not "
                    "allowed"
                )
            system = self._require_system(key)
            plan.require_compatible(
                system.plan.n, system.plan.direction
            )
            if (
                plan.matrix is not system.plan.matrix
                and plan.matrix != system.plan.matrix
            ):
                raise MatrixFormatError(
                    "hot-swapped plan was compiled from a different "
                    f"matrix than the one registered under {key!r}"
                )
            system.plan = plan
            system.n_plan_swaps += 1
        if self._obs is not None:
            self._obs.get_registry().counter(
                "service.hot_swaps", system=str(key)
            ).inc()
            self._obs.event("service.hot_swap", system=str(key))
        return plan

    def unregister(self, key: object) -> SystemStats:
        """Remove a registered system, returning its final stats.

        Long-running services register and retire many systems; without
        this, the system table (and every pinned plan) grows without
        bound.  Requests already queued for the system still complete —
        they hold their own reference — but new submissions raise
        :class:`~repro.errors.ConfigurationError`.  Unknown keys raise;
        unregistering is allowed after :meth:`close` (cleanup is always
        safe).
        """
        with self._cond:
            system = self._require_system(key)
            del self._systems[key]
            return system.snapshot(self._backend.name)

    def systems(self) -> list[object]:
        """Keys of all registered systems."""
        with self._cond:
            return list(self._systems)

    # ------------------------------------------------------------------
    # request paths
    # ------------------------------------------------------------------
    def submit(
        self, key: object, b: np.ndarray, *, timeout: float | None = None
    ) -> "Future[np.ndarray]":
        """Enqueue one right-hand side; returns a future for ``x``.

        ``timeout`` (seconds) sets the request's deadline: if the
        worker has not *started executing* it within the bound, the
        future fails with
        :class:`~repro.errors.DeadlineExceededError` instead of the
        expired request occupying a batch slot.
        """
        return self.submit_many(key, [b], timeout=timeout)[0]

    def submit_many(
        self,
        key: object,
        bs: list[np.ndarray] | np.ndarray,
        *,
        timeout: float | None = None,
    ) -> "list[Future[np.ndarray]]":
        """Enqueue several right-hand sides under one lock acquisition.

        All requests enter the queue back-to-back, so the worker can
        coalesce them into ``max_batch``-sized micro-batches even while
        other clients interleave their own submissions.  Admission is
        all-or-nothing: when a ``max_queue`` bound is configured and
        the whole batch does not fit, the submission raises
        :class:`~repro.errors.AdmissionError` and enqueues nothing.
        ``timeout`` (seconds) applies per request, measured from
        enqueue (see :meth:`submit`).
        """
        if timeout is not None and timeout <= 0.0:
            raise ConfigurationError(
                f"timeout must be positive (seconds), got {timeout}"
            )
        system, checked = None, []
        with self._cond:
            if self._closed:
                raise ServiceClosedError(
                    "service is closed; submit() after close() is not "
                    "allowed"
                )
            system = self._require_system(key)
        for b in bs:
            try:
                checked.append(
                    ExecutionBackend._check_rhs(system.plan, b)
                )
            except MatrixFormatError as exc:
                raise MatrixFormatError(f"system {key!r}: {exc}") from None
        futures: list[Future] = []
        now = time.perf_counter()
        deadline = now + timeout if timeout is not None else None
        with self._cond:
            if self._closed:
                raise ServiceClosedError(
                    "service is closed; submit() after close() is not "
                    "allowed"
                )
            if (
                self._max_queue is not None
                and len(self._queue) + len(checked) > self._max_queue
            ):
                system.n_admission_rejections += len(checked)
                depth = len(self._queue)
                if self._obs is not None:
                    self._obs.get_registry().counter(
                        "service.admission_rejections", system=str(key)
                    ).inc(len(checked))
                raise AdmissionError(
                    f"system {key!r}: queue full ({depth} waiting, "
                    f"bound {self._max_queue}); rejected "
                    f"{len(checked)} request(s)"
                )
            for b in checked:
                fut: Future = Future()
                self._queue.append(
                    _Request(system, b, fut, now, deadline)
                )
                futures.append(fut)
            self._cond.notify()
        if self._obs is not None:
            self._obs.event(
                "service.enqueue", system=str(key), n=len(checked)
            )
        return futures

    def solve(
        self, key: object, b: np.ndarray, *, timeout: float | None = None
    ) -> np.ndarray:
        """Blocking convenience wrapper: ``submit(key, b).result()``."""
        return self.submit(key, b, timeout=timeout).result()

    def solve_block(self, key: object, b_block: np.ndarray) -> np.ndarray:
        """Synchronous SpTRSM against a registered system.

        Bypasses the queue (the caller already has its batch) but is
        recorded in the same per-system statistics as one batch of
        ``k`` requests.
        """
        with self._cond:
            if self._closed:
                raise ServiceClosedError(
                    "service is closed; solve_block() after close() is "
                    "not allowed"
                )
            system = self._require_system(key)
        try:
            b_block = ExecutionBackend._check_rhs_block(system.plan,
                                                        b_block)
        except MatrixFormatError as exc:
            raise MatrixFormatError(f"system {key!r}: {exc}") from None
        t0 = time.perf_counter()
        x_block = self._backend.solve_block(system.plan, b_block)
        elapsed = time.perf_counter() - t0
        k = b_block.shape[1]
        with self._cond:
            self._record(system, k, elapsed, elapsed * k,
                         latencies=[elapsed] * k,
                         queue_waits=[0.0] * k)
        return x_block

    def _require_system(self, key: object) -> _System:
        try:
            return self._systems[key]
        except KeyError:
            raise ConfigurationError(
                f"unknown system {key!r}; registered: "
                f"{sorted(map(repr, self._systems))}"
            ) from None

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self, key: object | None = None):
        """Stats snapshot: one :class:`SystemStats` for ``key``, or a
        ``{key: SystemStats}`` dict over all registered systems.  Every
        snapshot carries the resolved backend name, so reported solve
        times and throughputs are attributable to a kernel tier."""
        name = self._backend.name
        with self._cond:
            if key is not None:
                return self._require_system(key).snapshot(name)
            return {k: s.snapshot(name) for k, s in self._systems.items()}

    @property
    def plan_cache(self) -> PlanCache:
        """The (shared) plan cache lowering registered systems."""
        return self._cache

    @property
    def pending(self) -> int:
        """Requests currently waiting in the queue (not yet executing)."""
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Stop accepting requests; the worker drains the queue first.

        Idempotent.  With ``wait`` (default) blocks until every pending
        future is resolved and the worker has exited.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if wait:
            self._worker.join()
        if self._store is not None:
            # defensive: registrations flush as they record, but a
            # store shared with other writers may hold pending records
            self._store.flush()
        if self._obs is not None:
            # persist metrics + trace so `repro obs report` works right
            # after a service run; the snapshot is cumulative, so a
            # repeat close() just rewrites a superset
            self._obs.flush()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:  # closed and drained
                    return
                batch, expired = self._take_batch_locked()
            if expired:
                self._expire(expired)
            if batch:
                self._execute(batch)

    def _take_batch_locked(
        self,
    ) -> tuple[list[_Request], list[_Request]]:
        """Pop the head request plus consecutive same-system followers.

        Coalescing only the head *run* (never reaching past a request
        for a different system) keeps completion order identical to
        submission order.  Requests whose deadline has already passed
        are swept into the second returned list instead of occupying
        batch slots — the head run keeps coalescing past them, so one
        expired request cannot split an otherwise contiguous batch.
        """
        now = time.perf_counter()
        expired: list[_Request] = []
        while self._queue and self._queue[0].expired(now):
            expired.append(self._queue.popleft())
        if not self._queue:
            return [], expired
        first = self._queue.popleft()
        batch = [first]
        limit = (
            first.system.max_batch
            if first.system.max_batch is not None
            else self._max_batch
        )
        while (
            self._queue
            and len(batch) < limit
            and self._queue[0].system is first.system
        ):
            request = self._queue.popleft()
            if request.expired(now):
                expired.append(request)
            else:
                batch.append(request)
        return batch, expired

    def _expire(self, expired: list[_Request]) -> None:
        """Fail swept requests with :class:`DeadlineExceededError`."""
        failed: dict[_System, int] = {}
        for request in expired:
            if not request.future.set_running_or_notify_cancel():
                continue  # client cancelled first; nothing to report
            request.future.set_exception(
                DeadlineExceededError(
                    f"system {request.system.key!r}: deadline passed "
                    "before the request reached execution"
                )
            )
            failed[request.system] = failed.get(request.system, 0) + 1
        if not failed:
            return
        with self._cond:
            for system, n in failed.items():
                system.n_deadline_misses += n
        if self._obs is not None:
            registry = self._obs.get_registry()
            for system, n in failed.items():
                registry.counter(
                    "service.deadline_misses", system=str(system.key)
                ).inc(n)

    def _execute(self, batch: list[_Request]) -> None:
        # transition every future to RUNNING; drop the ones a client
        # cancelled while queued.  After this point cancel() can no
        # longer win, so set_result/set_exception below cannot raise
        # InvalidStateError (which would kill the worker thread).
        batch = [
            r for r in batch if r.future.set_running_or_notify_cancel()
        ]
        if not batch:
            return
        system = batch[0].system
        span = (
            self._obs.span(
                "service.batch",
                system=str(system.key),
                batch_size=len(batch),
            )
            if self._obs is not None
            else None
        )
        if span is not None:
            span.__enter__()
        t0 = time.perf_counter()
        try:
            if len(batch) == 1:
                results = [self._backend.solve(system.plan, batch[0].b)]
            else:
                b_block = np.stack([r.b for r in batch], axis=1)
                x_block = self._backend.solve_block(system.plan, b_block)
                results = [
                    np.ascontiguousarray(x_block[:, j])
                    for j in range(len(batch))
                ]
        except Exception as exc:  # propagate to every waiting client
            if span is not None:
                span.__exit__(type(exc), exc, None)
            for request in batch:
                request.future.set_exception(exc)
            return
        done = time.perf_counter()
        if span is not None:
            span.__exit__(None, None, None)
        # record stats *before* resolving the futures: a client woken by
        # result() must observe counters that include its own request
        # (latency is therefore measured to just before resolution)
        latencies = [done - r.enqueued_at for r in batch]
        queue_waits = [t0 - r.enqueued_at for r in batch]
        with self._cond:
            self._record(
                system,
                len(batch),
                done - t0,
                sum(latencies),
                latencies=latencies,
                queue_waits=queue_waits,
            )
        for request, x in zip(batch, results, strict=True):
            request.future.set_result(x)

    def _record(
        self,
        system: _System,
        batch_size: int,
        solve_seconds: float,
        latency_seconds: float,
        *,
        latencies: list[float] | None = None,
        queue_waits: list[float] | None = None,
    ) -> None:
        """Update one system's counters; caller holds the lock."""
        system.n_requests += batch_size
        system.n_batches += 1
        system.max_batch_size = max(system.max_batch_size, batch_size)
        system.total_solve_seconds += solve_seconds
        system.total_latency_seconds += latency_seconds
        if queue_waits:
            system.total_queue_wait_seconds += sum(queue_waits)
        if system.batch_hist is not None:
            system.batch_hist.observe(batch_size)
            if latencies:
                for latency in latencies:
                    system.latency_hist.observe(latency)
            if queue_waits:
                for wait in queue_waits:
                    system.queue_wait_hist.observe(wait)

    def __repr__(self) -> str:
        with self._cond:
            return (
                f"SolveService(systems={len(self._systems)}, "
                f"pending={len(self._queue)}, backend="
                f"{self._backend.name!r}, closed={self._closed})"
            )
