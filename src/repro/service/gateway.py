"""The :class:`ServingGateway`: key-hash sharded SpTRSV serving.

Why shard
---------
A single :class:`~repro.service.SolveService` coalesces only the
*consecutive* run of same-system requests at its queue head
(:meth:`~repro.service.service.SolveService._take_batch_locked`), so
interleaved traffic for several systems degenerates to batch-size-1
dispatch — cross-key head-of-line blocking.  The gateway removes it
structurally: requests are routed by a **stable hash of the system
key** to one of ``n_shards`` independent :class:`SolveService` shards,
each with its own queue and worker thread.  Every system lives on
exactly one shard, so a shard's queue only ever holds requests that
*can* batch together, and the head run coalesces up to ``max_batch``
regardless of how clients interleave across systems.

All shards share one :class:`~repro.exec.PlanCache` (and, through it,
any configured plan store) plus the optional observation store, so
lowering work and tuning data are pooled exactly as with a single
service.

Routing is stateless — ``shard_index(key, n_shards)`` is a pure
function of the key's string form, stable across processes and Python
versions (it does not use the seeded builtin ``hash``).  Clients and
operators can therefore compute placement without asking the gateway.

Admission and deadlines are per shard: a bounded ``max_queue`` applies
to each shard's queue independently (overflow raises
:class:`~repro.errors.AdmissionError`), and per-request ``timeout``
deadlines fail futures with
:class:`~repro.errors.DeadlineExceededError` exactly as on a direct
service.

Results are **bit-equal** to a direct :class:`SolveService` (and to
the single-RHS kernels): sharding changes *which queue* a request
waits in, never the arithmetic.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError, ServiceClosedError
from repro.exec import ExecutionPlan, PlanCache
from repro.matrix.csr import CSRMatrix
from repro.scheduler.schedule import Schedule
from repro.service.service import SolveService
from repro.service.stats import SystemStats

__all__ = ["ServingGateway", "pick_balanced_keys", "shard_index"]


def shard_index(key: object, n_shards: int) -> int:
    """Stable shard placement of ``key`` among ``n_shards`` shards.

    Hashes the key's ``str()`` form with BLAKE2s, so placement is
    deterministic across processes and interpreter versions (the
    builtin ``hash`` is seeded per process and would re-shuffle the
    fleet on every restart).  Keys must therefore have distinct string
    forms — the same requirement the obs label layer already imposes.

    Examples
    --------
    >>> shard_index("pressure", 4) == shard_index("pressure", 4)
    True
    >>> 0 <= shard_index("pressure", 4) < 4
    True
    """
    if n_shards < 1:
        raise ConfigurationError(
            f"n_shards must be >= 1, got {n_shards}"
        )
    digest = hashlib.blake2s(
        str(key).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % n_shards


def pick_balanced_keys(
    n_keys: int,
    shard_counts: int | tuple[int, ...],
    *,
    prefix: str = "sys",
) -> list[str]:
    """Deterministic key names where key ``i`` lands on shard ``i % m``.

    Hash routing does not guarantee that a handful of keys spread
    evenly over a handful of shards; benchmarks and tests that compare
    shard counts need keys that balance under *every* topology being
    compared.  This probes deterministic candidate names
    (``{prefix}-{i}``, then ``{prefix}-{i}.{j}``) until one satisfies
    ``shard_index(key, m) == i % m`` for each ``m`` in
    ``shard_counts`` simultaneously — so the same key set is perfectly
    balanced on, say, both a 2-shard and a 4-shard gateway.

    Examples
    --------
    >>> keys = pick_balanced_keys(4, (2, 4))
    >>> [shard_index(k, 2) for k in keys]
    [0, 1, 0, 1]
    >>> [shard_index(k, 4) for k in keys]
    [0, 1, 2, 3]
    """
    if isinstance(shard_counts, int):
        shard_counts = (shard_counts,)
    if n_keys < 1:
        raise ConfigurationError(f"n_keys must be >= 1, got {n_keys}")
    for m in shard_counts:
        if m < 1:
            raise ConfigurationError(
                f"shard counts must be >= 1, got {m}"
            )
    keys: list[str] = []
    for i in range(n_keys):
        for j in range(100_000):
            candidate = (
                f"{prefix}-{i}" if j == 0 else f"{prefix}-{i}.{j}"
            )
            if all(
                shard_index(candidate, m) == i % m
                for m in shard_counts
            ):
                keys.append(candidate)
                break
        else:  # pragma: no cover - probability ~0 for sane inputs
            raise ConfigurationError(
                f"no balanced key found for slot {i} under "
                f"shard counts {shard_counts}"
            )
    return keys


class ServingGateway:
    """Route keyed solve requests across ``n_shards`` service shards.

    Parameters
    ----------
    n_shards:
        Number of independent :class:`SolveService` shards (each with
        its own queue and worker thread).
    backend, max_batch, max_queue, store:
        Forwarded to every shard (``max_queue`` bounds each shard's
        queue *independently*).
    plan_cache:
        Shared :class:`~repro.exec.PlanCache`; one private cache is
        created and shared across all shards when omitted, so a system
        is lowered once no matter which shard owns it.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.matrix.generators import erdos_renyi_lower
    >>> from repro.service.gateway import ServingGateway
    >>> L = erdos_renyi_lower(100, 0.05, seed=0)
    >>> with ServingGateway(n_shards=2) as gw:
    ...     _ = gw.register("sys", L)
    ...     x = gw.solve("sys", np.ones(100))
    >>> x.shape
    (100,)
    """

    def __init__(
        self,
        n_shards: int = 2,
        *,
        backend: str | None = None,
        max_batch: int = 64,
        max_queue: int | None = None,
        plan_cache: PlanCache | None = None,
        store=None,
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {n_shards}"
            )
        cache = plan_cache if plan_cache is not None else PlanCache()
        self._cache = cache
        self._shards = [
            SolveService(
                backend=backend,
                max_batch=max_batch,
                max_queue=max_queue,
                plan_cache=cache,
                store=store,
            )
            for _ in range(n_shards)
        ]
        self._closed = False

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_of(self, key: object) -> int:
        """The shard index serving ``key`` (pure hash, no lookup)."""
        return shard_index(key, len(self._shards))

    def _shard(self, key: object) -> SolveService:
        if self._closed:
            raise ServiceClosedError(
                "gateway is closed; requests after close() are not "
                "allowed"
            )
        return self._shards[self.shard_of(key)]

    # ------------------------------------------------------------------
    # registration / lifecycle — thin routed wrappers
    # ------------------------------------------------------------------
    def register(
        self,
        key: object,
        matrix: CSRMatrix,
        schedule: Schedule | str | None = None,
        **kwargs,
    ) -> ExecutionPlan:
        """Register a system on its hash-designated shard.

        Accepts everything :meth:`SolveService.register` does,
        including ``schedule="auto"`` tuning.
        """
        return self._shard(key).register(key, matrix, schedule, **kwargs)

    def unregister(self, key: object) -> SystemStats:
        """Remove a system from its shard, returning final stats."""
        # cleanup stays legal on a closed gateway, as on a service
        return self._shards[self.shard_of(key)].unregister(key)

    def hot_swap(self, key: object, plan: ExecutionPlan) -> ExecutionPlan:
        """Atomically replace ``key``'s serving plan on its shard."""
        return self._shard(key).hot_swap(key, plan)

    def systems(self) -> list[object]:
        """Keys of all registered systems across every shard."""
        out: list[object] = []
        for shard in self._shards:
            out.extend(shard.systems())
        return out

    # ------------------------------------------------------------------
    # request paths — routed by key hash
    # ------------------------------------------------------------------
    def submit(self, key: object, b, *, timeout: float | None = None):
        """Enqueue one RHS on ``key``'s shard; returns a future."""
        return self._shard(key).submit(key, b, timeout=timeout)

    def submit_many(
        self, key: object, bs, *, timeout: float | None = None
    ):
        """Enqueue several RHS on ``key``'s shard under one lock."""
        return self._shard(key).submit_many(key, bs, timeout=timeout)

    def solve(
        self, key: object, b, *, timeout: float | None = None
    ) -> np.ndarray:
        """Blocking convenience wrapper: ``submit(key, b).result()``."""
        return self._shard(key).solve(key, b, timeout=timeout)

    def solve_block(self, key: object, b_block) -> np.ndarray:
        """Synchronous SpTRSM on ``key``'s shard (bypasses the queue)."""
        return self._shard(key).solve_block(key, b_block)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self, key: object | None = None):
        """One :class:`SystemStats` for ``key``, or a merged
        ``{key: SystemStats}`` dict over every shard's systems."""
        if key is not None:
            return self._shards[self.shard_of(key)].stats(key)
        merged: dict[object, SystemStats] = {}
        for shard in self._shards:
            merged.update(shard.stats())
        return merged

    def shard_stats(self) -> "list[dict[object, SystemStats]]":
        """Per-shard stats dicts, indexed by shard — the balance view."""
        return [shard.stats() for shard in self._shards]

    @property
    def pending(self) -> int:
        """Total queued requests across all shards."""
        return sum(shard.pending for shard in self._shards)

    @property
    def pending_per_shard(self) -> list[int]:
        """Queue depth of each shard (balance / saturation probe)."""
        return [shard.pending for shard in self._shards]

    @property
    def plan_cache(self) -> PlanCache:
        """The plan cache shared by every shard."""
        return self._cache

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Close every shard (each drains its queue first).  Idempotent."""
        self._closed = True
        for shard in self._shards:
            shard.close(wait=wait)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServingGateway(n_shards={len(self._shards)}, "
            f"systems={len(self.systems())}, pending={self.pending}, "
            f"closed={self._closed})"
        )
