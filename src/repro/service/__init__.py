"""Concurrent solve service: batched SpTRSV as a long-running system.

The paper's amortization argument (Table 7.6, Eq. 7.1) is that schedule
compilation pays for itself over *many* solves.  This package supplies
the missing serving layer over :mod:`repro.exec`: a
:class:`SolveService` holds registered ``(matrix, schedule)`` systems —
each lowered once into an :class:`~repro.exec.plan.ExecutionPlan`
through a shared thread-safe :class:`~repro.exec.PlanCache` — and
serves keyed solve requests against them.  Concurrent single-RHS
requests for the same system are coalesced into SpTRSM micro-batches
executed through :meth:`~repro.exec.backends.ExecutionBackend
.solve_block`, so ``k`` queued requests cost one vectorized sweep over
the plan's dependency layers instead of ``k``.

Per-system latency / throughput / batch-size statistics are exposed via
:meth:`SolveService.stats`.

For traffic spread over *many* systems, a single service's head-run
coalescing degrades to batch-1 dispatch (cross-key head-of-line
blocking); the :class:`ServingGateway` removes that by routing each
key, via a stable hash, to one of N independent service shards — see
:mod:`repro.service.gateway`.  The open-loop traffic harness that
measures both lives in :mod:`repro.service.loadgen`.
"""

from repro.service.gateway import (
    ServingGateway,
    pick_balanced_keys,
    shard_index,
)
from repro.service.service import SolveService
from repro.service.stats import SystemStats

__all__ = [
    "ServingGateway",
    "SolveService",
    "SystemStats",
    "pick_balanced_keys",
    "shard_index",
]
