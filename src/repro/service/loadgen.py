"""Open-loop traffic generation against a gateway or service.

Open loop means arrivals follow a *precomputed schedule* — Poisson
inter-arrival gaps at a target rate, optionally in bursty phases — and
the generator submits on schedule whether or not earlier requests have
completed.  Closed-loop drivers (submit, wait, submit) measure only
how fast the system lets one client go; open-loop drivers expose
queueing collapse: when the service cannot keep up, latency grows
without bound and bounded queues start rejecting, and that is exactly
what the report shows (p50/p90/p99 client-observed latency, admission
rejections, deadline misses, queue-wait vs execute-time breakdown,
per-shard balance).

Key choice per arrival follows a Zipf distribution over the registered
keys (``weight(rank i) ∝ (i + 1) ** -s``), so hot-key skew — the
regime where sharding matters — is one knob.  ``s = 0`` is uniform.

Everything is deterministic given :class:`LoadgenConfig.seed`: the
schedule (arrival instants and key choices) is built once with a
seeded generator, so two runs against different topologies offer
*identical* traffic.

:func:`saturation_throughput` is the companion closed-world probe: it
enqueues an interleaved backlog all at once and times the drain,
measuring the peak rate the topology sustains — the number the
2-shard-vs-single-service benchmark floors compare.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeadlineExceededError,
)

__all__ = [
    "BurstPhase",
    "LoadgenConfig",
    "LoadgenReport",
    "build_schedule",
    "run_loadgen",
    "saturation_throughput",
]


@dataclass(frozen=True)
class BurstPhase:
    """One constant-rate segment of an open-loop schedule.

    A bursty workload is a sequence of phases — e.g. a baseline rate,
    a spike at several times that rate, then the baseline again.
    """

    rate_rps: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.rate_rps <= 0.0:
            raise ConfigurationError(
                f"phase rate_rps must be > 0, got {self.rate_rps}"
            )
        if self.duration_s <= 0.0:
            raise ConfigurationError(
                f"phase duration_s must be > 0, got {self.duration_s}"
            )


@dataclass(frozen=True)
class LoadgenConfig:
    """Knobs of one open-loop run.

    Attributes
    ----------
    phases:
        Burst phases executed back to back (at least one).
    zipf_s:
        Hot-key skew exponent: arrival key rank ``i`` is drawn with
        weight ``(i + 1) ** -zipf_s``.  ``0.0`` = uniform; ``1.0`` is
        classic Zipf; larger = hotter head.
    seed:
        Seed for the schedule generator (arrival gaps + key choices).
    timeout_s:
        Optional per-request deadline forwarded to ``submit``.
    """

    phases: tuple[BurstPhase, ...]
    zipf_s: float = 0.0
    seed: int = 0
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError(
                "config needs at least one BurstPhase"
            )
        if self.zipf_s < 0.0:
            raise ConfigurationError(
                f"zipf_s must be >= 0, got {self.zipf_s}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )

    @property
    def duration_s(self) -> float:
        return sum(p.duration_s for p in self.phases)

    @property
    def offered_rate_rps(self) -> float:
        """Duration-weighted mean arrival rate over all phases."""
        return (
            sum(p.rate_rps * p.duration_s for p in self.phases)
            / self.duration_s
        )


def zipf_weights(n_keys: int, s: float) -> np.ndarray:
    """Normalized Zipf key weights: ``w[i] ∝ (i + 1) ** -s``.

    Examples
    --------
    >>> zipf_weights(4, 0.0).tolist()
    [0.25, 0.25, 0.25, 0.25]
    >>> w = zipf_weights(3, 1.0)
    >>> bool(w[0] > w[1] > w[2])
    True
    """
    if n_keys < 1:
        raise ConfigurationError(f"n_keys must be >= 1, got {n_keys}")
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    weights = ranks ** (-float(s))
    return weights / weights.sum()


def build_schedule(
    config: LoadgenConfig, n_keys: int
) -> list[tuple[float, int]]:
    """Materialize the arrival schedule: ``(arrival_s, key_slot)``.

    Arrival instants are offsets from the run start; gaps inside each
    phase are exponential at the phase rate (a Poisson process), and
    key slots are Zipf(``zipf_s``)-distributed ranks in
    ``[0, n_keys)``.  Deterministic given ``config.seed``.

    Examples
    --------
    >>> cfg = LoadgenConfig(phases=(BurstPhase(100.0, 0.5),), seed=7)
    >>> schedule = build_schedule(cfg, 2)
    >>> all(0.0 <= t < 0.5 for t, _ in schedule)
    True
    >>> schedule == build_schedule(cfg, 2)  # seeded => reproducible
    True
    """
    rng = np.random.default_rng(config.seed)
    weights = zipf_weights(n_keys, config.zipf_s)
    schedule: list[tuple[float, int]] = []
    phase_start = 0.0
    for phase in config.phases:
        t = float(rng.exponential(1.0 / phase.rate_rps))
        while t < phase.duration_s:
            slot = int(rng.choice(n_keys, p=weights))
            schedule.append((phase_start + t, slot))
            t += float(rng.exponential(1.0 / phase.rate_rps))
        phase_start += phase.duration_s
    return schedule


def _percentile(sorted_values: list[float], q: float) -> float:
    """Exact nearest-rank percentile of an ascending-sorted list."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, int(np.ceil(q * len(sorted_values))) - 1),
    )
    return sorted_values[rank]


@dataclass(frozen=True)
class LoadgenReport:
    """Outcome of one open-loop run — the serving scorecard.

    Latency percentiles are **client-observed** (submit instant to
    future resolution, measured by a done-callback in the worker
    thread), computed exactly over the run's completed requests — not
    from the obs log-bucket histograms, so they carry no bucketing
    error.  ``queue_wait`` / ``execute`` totals come from the target's
    own :class:`~repro.service.SystemStats` counters and split the
    same latency into its waiting and solving components.
    """

    n_requests: int
    n_ok: int
    n_admission_rejected: int
    n_deadline_missed: int
    n_failed: int
    duration_s: float
    elapsed_s: float
    offered_rate_rps: float
    achieved_rps: float
    latency_p50_s: float
    latency_p90_s: float
    latency_p99_s: float
    total_queue_wait_s: float
    total_execute_s: float
    per_shard_requests: list[int] = field(default_factory=list)
    max_schedule_slip_s: float = 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "n_requests": self.n_requests,
            "n_ok": self.n_ok,
            "n_admission_rejected": self.n_admission_rejected,
            "n_deadline_missed": self.n_deadline_missed,
            "n_failed": self.n_failed,
            "duration_s": self.duration_s,
            "elapsed_s": self.elapsed_s,
            "offered_rate_rps": self.offered_rate_rps,
            "achieved_rps": self.achieved_rps,
            "latency_p50_s": self.latency_p50_s,
            "latency_p90_s": self.latency_p90_s,
            "latency_p99_s": self.latency_p99_s,
            "total_queue_wait_s": self.total_queue_wait_s,
            "total_execute_s": self.total_execute_s,
            "per_shard_requests": list(self.per_shard_requests),
            "max_schedule_slip_s": self.max_schedule_slip_s,
        }


def _stats_totals(target, keys) -> tuple[float, float]:
    """Summed (queue-wait, execute) seconds over ``keys`` from stats."""
    queue_wait = 0.0
    execute = 0.0
    for key in keys:
        stats = target.stats(key)
        queue_wait += stats.total_queue_wait_seconds
        execute += stats.total_solve_seconds
    return queue_wait, execute


def _per_shard_requests(target, keys) -> list[int]:
    """Completed-request count per shard (single service: one entry)."""
    shard_stats = getattr(target, "shard_stats", None)
    if shard_stats is None:
        return [sum(target.stats(k).n_requests for k in keys)]
    wanted = set(keys)
    return [
        sum(s.n_requests for k, s in per_shard.items() if k in wanted)
        for per_shard in shard_stats()
    ]


def run_loadgen(
    target,
    keys: list[object],
    rhs: dict[object, np.ndarray],
    config: LoadgenConfig,
) -> LoadgenReport:
    """Drive ``target`` with open-loop traffic and score the run.

    ``target`` is anything with the service request surface
    (``submit(key, b, *, timeout=...)`` and ``stats(key)``) — a
    :class:`~repro.service.ServingGateway` or a bare
    :class:`~repro.service.SolveService`.  ``keys[i]`` is the key for
    Zipf rank ``i`` (``keys[0]`` is the hottest), and ``rhs`` maps
    each key to the right-hand side submitted for it.

    The generator sleeps until each scheduled arrival and submits
    without waiting for completions; when the schedule is exhausted it
    blocks until every outstanding future resolves, then aggregates.
    """
    for key in keys:
        if key not in rhs:
            raise ConfigurationError(f"no RHS supplied for key {key!r}")
    schedule = build_schedule(config, len(keys))
    base_queue_wait, base_execute = _stats_totals(target, keys)

    outcomes: list[tuple[float, Future]] = []
    # resolution instants, recorded by done-callbacks in the worker
    # thread the moment each future resolves — waiting on the futures
    # afterwards (in submission order) must not inflate the latency of
    # requests that completed while the client was blocked elsewhere
    resolved_at: dict[int, float] = {}

    def _mark(index: int):
        def _cb(_future: Future) -> None:
            resolved_at[index] = time.perf_counter()

        return _cb

    n_admission_rejected = 0
    max_slip = 0.0
    t_start = time.perf_counter()
    for arrival_s, slot in schedule:
        now = time.perf_counter()
        delay = (t_start + arrival_s) - now
        if delay > 0.0:
            time.sleep(delay)
        else:
            max_slip = max(max_slip, -delay)
        key = keys[slot]
        submitted_at = time.perf_counter()
        try:
            future = target.submit(
                key, rhs[key], timeout=config.timeout_s
            )
        except AdmissionError:
            n_admission_rejected += 1
            continue
        future.add_done_callback(_mark(len(outcomes)))
        outcomes.append((submitted_at, future))

    n_ok = 0
    n_deadline_missed = 0
    n_failed = 0
    latencies: list[float] = []
    for index, (submitted_at, future) in enumerate(outcomes):
        try:
            future.result()
        except DeadlineExceededError:
            n_deadline_missed += 1
            continue
        except Exception:
            n_failed += 1
            continue
        n_ok += 1
        latencies.append(resolved_at[index] - submitted_at)
    elapsed = time.perf_counter() - t_start

    queue_wait, execute = _stats_totals(target, keys)
    latencies.sort()
    return LoadgenReport(
        n_requests=len(schedule),
        n_ok=n_ok,
        n_admission_rejected=n_admission_rejected,
        n_deadline_missed=n_deadline_missed,
        n_failed=n_failed,
        duration_s=config.duration_s,
        elapsed_s=elapsed,
        offered_rate_rps=config.offered_rate_rps,
        achieved_rps=n_ok / elapsed if elapsed > 0.0 else 0.0,
        latency_p50_s=_percentile(latencies, 0.50),
        latency_p90_s=_percentile(latencies, 0.90),
        latency_p99_s=_percentile(latencies, 0.99),
        total_queue_wait_s=queue_wait - base_queue_wait,
        total_execute_s=execute - base_execute,
        per_shard_requests=_per_shard_requests(target, keys),
        max_schedule_slip_s=max_slip,
    )


def saturation_throughput(
    target,
    keys: list[object],
    rhs: dict[object, np.ndarray],
    n_requests: int,
) -> dict[str, float]:
    """Backlog-drain throughput of ``target`` on interleaved traffic.

    Submits ``n_requests`` single-RHS requests round-robin across
    ``keys`` — the worst case for a single service's head-run
    coalescing (consecutive queue entries alternate systems, so
    batches collapse to size 1) and the best case for a sharded
    gateway (each shard's queue is single-key contiguous) — then
    blocks until all complete.  Returns ``{"throughput_rps",
    "elapsed_s", "n_requests"}`` where throughput counts completed
    requests per wall-clock second of drain.
    """
    if n_requests < 1:
        raise ConfigurationError(
            f"n_requests must be >= 1, got {n_requests}"
        )
    sequence = [keys[i % len(keys)] for i in range(n_requests)]
    t0 = time.perf_counter()
    futures = [target.submit(key, rhs[key]) for key in sequence]
    for future in futures:
        future.result()
    elapsed = time.perf_counter() - t0
    return {
        "throughput_rps": n_requests / elapsed if elapsed > 0 else 0.0,
        "elapsed_s": elapsed,
        "n_requests": float(n_requests),
    }
