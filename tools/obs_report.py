#!/usr/bin/env python
"""Render a telemetry report from a ``REPRO_OBS`` capture directory.

Thin operational wrapper over the ``repro obs`` CLI verbs (see
``docs/observability.md``): point it at a directory containing
``metrics.json`` / ``trace.jsonl`` — written by ``repro suite/bench
--obs-dir`` or by any process run with ``REPRO_OBS=1`` — and it prints
the per-system latency/batch percentile report, optionally as JSON or
as a Prometheus text-format export.

Usage::

    PYTHONPATH=src python tools/obs_report.py [--dir DIR] [--json]
    PYTHONPATH=src python tools/obs_report.py --export [--output FILE]
    PYTHONPATH=src python tools/obs_report.py --tail [-n N]

No third-party dependencies; reading a capture never requires the
``REPRO_OBS`` gate to be on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main as repro_main  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir", default=None,
        help="capture directory (default: $REPRO_OBS_DIR or .repro-obs)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable output instead of the table",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--export", action="store_true",
        help="Prometheus text format instead of the report",
    )
    mode.add_argument(
        "--tail", action="store_true",
        help="most recent trace spans instead of the report",
    )
    parser.add_argument(
        "-n", "--count", type=int, default=20,
        help="spans to show with --tail (default: 20)",
    )
    parser.add_argument(
        "--output", default=None,
        help="with --export: write the text to FILE instead of stdout",
    )
    args = parser.parse_args(argv)

    if args.export:
        cli_args = ["obs", "export"]
        if args.output:
            cli_args += ["--output", args.output]
    elif args.tail:
        cli_args = ["obs", "tail", "--count", str(args.count)]
    else:
        cli_args = ["obs", "report"]
    if args.dir:
        cli_args += ["--dir", args.dir]
    if args.json and not args.export:
        cli_args.append("--json")
    if args.json and args.export and not args.output:
        cli_args.append("--json")
    return repro_main(cli_args)


if __name__ == "__main__":
    sys.exit(main())
