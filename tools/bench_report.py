#!/usr/bin/env python
"""Emit the repo's perf trajectory: ``BENCH_*.json`` per suite.

Runs the exec / service / tuner micro-benchmarks of
:mod:`repro.experiments.bench` in full (non-smoke) mode and writes one
``BENCH_<suite>.json`` per suite — per-backend median solve seconds for
the exec suite (serial-loop / numpy / numba / numba-parallel / fused,
per plan shape), serving throughput for the service suite,
single-vs-sharded saturation throughput plus open-loop latency
percentiles for the serving suite, cold-vs-warm tuning cost for the
tuner suite, cold-compile-vs-verified-load cost for the plan_store
suite — plus ``BENCH_warm_start.json`` from the
persistent-JIT two-process check and the plan-store two-process check
(each second process must perform zero compiles; the script exits
non-zero when either recompiles).

Later PRs move these floors; CI uploads the smoke-scaled equivalents as
build artifacts on every push so the trajectory is visible per run.

Usage::

    PYTHONPATH=src python tools/bench_report.py [--output DIR] [--smoke]
                        [--suite {exec,service,serving,tuner,plan_store,all}]

No third-party dependencies beyond the repo's own (numba optional: the
JIT tiers report ``null`` and the warm-start check is skipped without
it).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main as repro_main  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO_ROOT),
        help="directory for the BENCH_*.json files (default: repo root)",
    )
    parser.add_argument(
        "--suite", default="all",
        choices=["exec", "service", "serving", "tuner", "plan_store",
                 "all"],
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized instances instead of the full trajectory run",
    )
    args = parser.parse_args(argv)

    cli_args = ["bench", "--suite", args.suite, "--report",
                "--output", args.output, "--json"]
    if args.smoke:
        cli_args.append("--smoke")
    return repro_main(cli_args)


if __name__ == "__main__":
    sys.exit(main())
