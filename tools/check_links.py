#!/usr/bin/env python
"""Check relative links and anchors in the repo's Markdown docs.

Scans the given Markdown files (default: ``README.md`` and
``docs/*.md``) for inline links ``[text](target)`` and verifies that

* relative file targets exist (resolved against the linking file's
  directory),
* anchor targets (``#section`` or ``file.md#section``) resolve to a
  heading in the target file, using GitHub's slugging rules
  (lowercase, punctuation stripped, spaces to dashes),

and exits non-zero listing every broken link.  External links
(``http://``, ``https://``, ``mailto:``) are not fetched — CI must not
depend on the network.  No third-party dependencies.

Usage::

    python tools/check_links.py [FILE.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links; images share the syntax (leading ``!``).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def display(path: Path) -> str:
    """Repo-relative path when possible, absolute otherwise."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug of a heading line."""
    # inline code/links render as their text before slugging
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def markdown_lines_outside_fences(path: Path) -> list[tuple[int, str]]:
    """(line number, line) pairs with fenced code blocks blanked out."""
    out = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8")
                                  .splitlines(), start=1):
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append((lineno, line))
    return out


def heading_slugs(path: Path) -> set[str]:
    """All anchor slugs a Markdown file exposes (GitHub de-dup rule:
    repeated slugs get ``-1``, ``-2``... suffixes)."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for _, line in markdown_lines_outside_fences(path):
        match = _HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one Markdown file."""
    problems = []
    for lineno, line in markdown_lines_outside_fences(path):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            where = f"{display(path)}:{lineno}"
            file_part, _, anchor = target.partition("#")
            if file_part:
                dest = (path.parent / file_part).resolve()
                if not dest.exists():
                    problems.append(
                        f"{where}: missing file target {target!r}"
                    )
                    continue
            else:
                dest = path
            if anchor:
                if dest.suffix.lower() not in (".md", ".markdown"):
                    continue  # anchors into non-Markdown: not checked
                if anchor.lower() not in heading_slugs(dest):
                    problems.append(
                        f"{where}: anchor #{anchor} not found in "
                        f"{display(dest)}"
                    )
    return problems


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(a).resolve() for a in argv]
    else:
        files = [REPO_ROOT / "README.md",
                 *sorted((REPO_ROOT / "docs").glob("*.md"))]
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"no such file: {f}", file=sys.stderr)
        return 2
    problems = []
    for f in files:
        problems.extend(check_file(f))
    for p in problems:
        print(p, file=sys.stderr)
    checked = ", ".join(display(f) for f in files)
    if problems:
        print(f"{len(problems)} broken link(s) across {checked}",
              file=sys.stderr)
        return 1
    print(f"links ok: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
