#!/usr/bin/env python
"""Both sweep directions on one problem: ILU(0) + scheduled forward AND
backward substitution.

The paper's algorithm covers forward- and backward-substitution
symmetrically (Section 2.2).  This example factors a non-symmetric matrix
with ILU(0), schedules the forward solve on the lower factor's DAG and the
backward solve on the upper factor's *backward* DAG, and verifies that the
scheduled pair applies the preconditioner exactly like the serial pair.

Run:  python examples/forward_backward_ilu.py
"""

import numpy as np

from repro import DAG, GrowLocalScheduler
from repro.graph.wavefront import critical_path_length
from repro.matrix.csr import CSRMatrix
from repro.matrix.ilu import ilu0
from repro.solver.backward import backward_dag, scheduled_backward_sptrsv
from repro.solver.scheduled import scheduled_sptrsv
from repro.solver.sptrsv import backward_substitution, forward_substitution


def build_nonsymmetric(n: int, seed: int = 0) -> CSRMatrix:
    """A diagonally dominant non-symmetric sparse matrix (convection-
    diffusion-like: symmetric diffusion + skewed convection band)."""
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for i in range(n):
        rows.append(i); cols.append(i); vals.append(4.0)
        for off in (-7, -1, 1, 5):
            j = i + off
            if 0 <= j < n and rng.random() < 0.8:
                rows.append(i); cols.append(j)
                vals.append(-0.5 - 0.5 * rng.random() * (off > 0))
    return CSRMatrix.from_coo(n, rows, cols, vals)


def main() -> None:
    a = build_nonsymmetric(5000)
    lower, upper = ilu0(a)
    print(f"A: n={a.n}, nnz={a.nnz};  ILU(0): "
          f"L nnz={lower.nnz}, U nnz={upper.nnz}")

    # forward schedule on L's DAG, backward schedule on U's backward DAG
    fdag = DAG.from_lower_triangular(lower)
    bdag = backward_dag(upper)
    scheduler = GrowLocalScheduler()
    fsched = scheduler.schedule(fdag, n_cores=8)
    bsched = scheduler.schedule(bdag, n_cores=8)
    print(f"forward : {critical_path_length(fdag)} wavefronts -> "
          f"{fsched.n_supersteps} supersteps")
    print(f"backward: {critical_path_length(bdag)} wavefronts -> "
          f"{bsched.n_supersteps} supersteps")

    # apply the preconditioner M^{-1} = U^{-1} L^{-1}, scheduled
    b = np.sin(np.arange(a.n) * 0.01)
    y = scheduled_sptrsv(lower, b, fsched)
    x = scheduled_backward_sptrsv(upper, y, bsched)

    # reference: serial sweeps
    y_ref = forward_substitution(lower, b)
    x_ref = backward_substitution(upper, y_ref)
    assert np.allclose(x, x_ref)
    print(f"scheduled == serial: max diff {np.abs(x - x_ref).max():.2e}")

    residual = np.linalg.norm(a.matvec(x) - b) / np.linalg.norm(b)
    print(f"ILU(0) preconditioner quality: ||A M^-1 b - b|| / ||b|| = "
          f"{residual:.3f}")


if __name__ == "__main__":
    main()
