#!/usr/bin/env python
"""Quickstart: schedule and solve one sparse triangular system.

Builds a random lower-triangular system, computes a GrowLocal schedule for
8 cores, verifies it, solves the system following the schedule, and prints
the schedule statistics the paper's evaluation revolves around (supersteps,
barrier reduction, simulated speed-up).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DAG,
    GrowLocalScheduler,
    forward_substitution,
    get_machine,
    scheduled_sptrsv,
)
from repro.graph.wavefront import critical_path_length
from repro.machine.bsp_sim import simulate_bsp
from repro.machine.serial_sim import simulate_serial
from repro.matrix.generators import rcm_mesh
from repro.scheduler.reorder import apply_reordering


def main() -> None:
    # 1. an SpTRSV instance: the lower triangle of an RCM-ordered FEM mesh
    full = rcm_mesh(80, 120, reach=1, lateral_prob=0.3, seed=0)
    lower = full.lower_triangle()
    b = np.ones(lower.n)
    print(f"matrix: n={lower.n}, nnz={lower.nnz}")

    # 2. its dependence DAG (Figure 1.1 of the paper)
    dag = DAG.from_lower_triangular(lower)
    wavefronts = critical_path_length(dag)
    print(f"DAG: {dag.m} edges, {wavefronts} wavefronts "
          f"(avg size {dag.n / wavefronts:.1f})")

    # 3. a GrowLocal schedule for 8 cores
    scheduler = GrowLocalScheduler()  # paper defaults: L=500, alpha0=20
    schedule = scheduler.schedule(dag, n_cores=8)
    schedule.validate(dag)  # Definition 2.1
    print(f"schedule: {schedule.n_supersteps} supersteps "
          f"({wavefronts / schedule.n_supersteps:.1f}x fewer barriers "
          f"than wavefront scheduling)")

    # 4. solve, following the schedule, and check against the serial kernel
    x = scheduled_sptrsv(lower, b, schedule)
    x_ref = forward_substitution(lower, b)
    assert np.allclose(x, x_ref)
    print(f"solution verified: max|x - x_ref| = "
          f"{np.abs(x - x_ref).max():.2e}")

    # 5. apply the Section 5 reordering and simulate the parallel execution
    machine = get_machine("intel_xeon_6238t").with_cores(8)
    mat2, b2, sched2, perm = apply_reordering(lower, b, schedule)
    sim = simulate_bsp(mat2, sched2, machine)
    serial_cycles = simulate_serial(lower, machine)
    print(f"simulated speed-up over serial on {machine.name} (8 cores): "
          f"{serial_cycles / sim.total_cycles:.2f}x "
          f"(compute {sim.compute_cycles:.0f} cycles, "
          f"barriers {sim.barrier_cycles:.0f} cycles)")


if __name__ == "__main__":
    main()
