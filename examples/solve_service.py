#!/usr/bin/env python
"""Serve concurrent solve requests through the SolveService.

Registers two triangular systems (a scheduled narrow-band instance and a
serial Erdős–Rényi instance), fires interleaved single-RHS requests at
them from several client threads, and prints the per-system serving
statistics — requests, micro-batch sizes, latency and throughput.  Every
answer is verified bit-equal to solving its right-hand side alone, which
is the service's core guarantee: coalescing is invisible to clients.

Run:  python examples/solve_service.py
"""

import threading

import numpy as np

from repro import compile_plan, get_backend
from repro.graph.dag import DAG
from repro.matrix.generators import erdos_renyi_lower, narrow_band_lower
from repro.scheduler import GrowLocalScheduler
from repro.service import SolveService

N_CLIENTS = 4
REQUESTS_PER_CLIENT = 12


def main() -> None:
    band = narrow_band_lower(3000, 0.05, 20.0, seed=0)
    er = erdos_renyi_lower(2000, 4e-3, seed=1)
    schedule = GrowLocalScheduler().schedule(
        DAG.from_lower_triangular(band), 8
    )
    backend = get_backend()
    oracles = {
        "band": compile_plan(band, schedule),
        "er": compile_plan(er),
    }
    sizes = {"band": band.n, "er": er.n}

    verified = []

    with SolveService(backend=backend, max_batch=16) as service:
        service.register("band", band, schedule)
        service.register("er", er)

        def client(seed: int) -> None:
            rng = np.random.default_rng(seed)
            key = "band" if seed % 2 == 0 else "er"
            bs = [rng.standard_normal(sizes[key])
                  for _ in range(REQUESTS_PER_CLIENT)]
            futures = service.submit_many(key, bs)
            for b, fut in zip(bs, futures, strict=True):
                x = fut.result(timeout=60)
                assert np.array_equal(x, backend.solve(oracles[key], b))
            verified.append(key)

        threads = [threading.Thread(target=client, args=(seed,))
                   for seed in range(N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        print(f"served {N_CLIENTS * REQUESTS_PER_CLIENT} requests from "
              f"{N_CLIENTS} clients ({len(verified)} verified streams)\n")
        for key, stats in sorted(service.stats().items()):
            row = stats.as_row()
            print(f"system {key!r}: n={row['n_rows']}, "
                  f"{row['requests']} requests in {row['batches']} "
                  f"micro-batches (avg {row['avg_batch']:.1f}, "
                  f"max {row['max_batch']}), "
                  f"avg latency {1e3 * row['avg_latency_s']:.2f} ms, "
                  f"throughput {row['throughput_rps']:.0f} solves/s")
    print("\nall results bit-equal to sequential solves")


if __name__ == "__main__":
    main()
