#!/usr/bin/env python
"""Incomplete-Cholesky preconditioned conjugate gradient — the workload
the paper's introduction motivates (Sections 1 and 6.2).

An IC(0)-preconditioned CG applies the same triangular factors at every
iteration; a good SpTRSV schedule is computed once and reused, which is
exactly the amortization scenario of Table 7.6.  This example:

1. builds an SPD FEM matrix and its IC(0) factor;
2. schedules the forward solve with GrowLocal;
3. runs PCG with and without the preconditioner;
4. reports iterations, triangular-solve reuses, and when the schedule
   amortizes under the simulated machine.

Run:  python examples/preconditioned_cg.py
"""

import numpy as np

from repro import DAG, GrowLocalScheduler, get_machine
from repro.experiments.metrics import amortization_threshold
from repro.machine.bsp_sim import simulate_bsp
from repro.machine.serial_sim import simulate_serial
from repro.matrix.generators import rcm_mesh
from repro.solver.cg import conjugate_gradient, ichol_preconditioner
from repro.utils.timing import Timer


def main() -> None:
    # an RCM-ordered FEM mesh: wide wavefronts, so the scheduled solve
    # actually beats serial and the schedule can amortize
    a = rcm_mesh(60, 80, reach=1, lateral_prob=0.4, seed=1)
    rng = np.random.default_rng(0)
    b = rng.random(a.n)
    print(f"SPD system: n={a.n}, nnz={a.nnz}")

    # plain CG
    plain = conjugate_gradient(a, b, tol=1e-10, max_iterations=2000)
    print(f"plain CG:          {plain.iterations} iterations, "
          f"residual {plain.residual_norm:.2e}")

    # IC(0)-preconditioned CG with a scheduled forward solve
    _, factor = ichol_preconditioner(a)
    dag = DAG.from_lower_triangular(factor)
    with Timer() as sched_timer:
        schedule = GrowLocalScheduler().schedule(dag, n_cores=8)
    precond, _ = ichol_preconditioner(a, schedule=schedule)
    pre = conjugate_gradient(a, b, preconditioner=precond,
                             tol=1e-10, max_iterations=2000)
    print(f"IC(0)-PCG:         {pre.iterations} iterations, "
          f"residual {pre.residual_norm:.2e}")
    print(f"triangular solves reused the schedule {pre.sptrsv_count} "
          f"times (2 per iteration)")

    # does the schedule amortize within this single CG solve?
    machine = get_machine("intel_xeon_6238t").with_cores(8)
    serial_s = machine.cycles_to_seconds(simulate_serial(factor, machine))
    parallel_s = machine.cycles_to_seconds(
        simulate_bsp(factor, schedule, machine).total_cycles
    )
    needed = amortization_threshold(sched_timer.elapsed, serial_s,
                                    parallel_s)
    print(f"amortization threshold: {needed:.0f} solves "
          f"({'amortized' if pre.sptrsv_count >= needed else 'not yet'}"
          f" within this one PCG solve at {pre.sptrsv_count} reuses)")


if __name__ == "__main__":
    main()
