#!/usr/bin/env python
"""Extending the library: writing and registering a custom scheduler.

Implements a "greedy level-halving" scheduler in ~30 lines against the
public Scheduler interface, registers it, and benchmarks it against
GrowLocal on the same instance — the extension path a downstream user
would follow.

Run:  python examples/custom_scheduler.py
"""

import numpy as np

from repro import DAG, Scheduler, Schedule, get_machine
from repro.experiments.datasets import DatasetInstance
from repro.experiments.runner import run_instance
from repro.experiments.tables import format_table
from repro.graph.wavefront import wavefront_levels
from repro.matrix.generators import rcm_mesh
from repro.scheduler import make_scheduler, register_scheduler
from repro.scheduler.wavefront_sched import balanced_contiguous_split


class LevelPairScheduler(Scheduler):
    """Glues every two consecutive wavefronts into one superstep by
    assigning both levels' vertices to cores in contiguous chunks of the
    *combined* level — valid because the second level's dependencies on
    the first stay on the same core only if the chunks align, so we simply
    put each odd level entirely on the cores of its even predecessor's
    chunk owners via a shared contiguous split of the pair."""

    name = "levelpair"

    def schedule(self, dag: DAG, n_cores: int) -> Schedule:
        self._check_cores(n_cores)
        level = wavefront_levels(dag)
        sigma = level // 2  # halve the barrier count
        cores = np.zeros(dag.n, dtype=np.int64)
        for s in range(int(sigma.max()) + 1 if dag.n else 0):
            members = np.sort(np.nonzero(sigma == s)[0])
            # one core per pair-superstep chunk; chunks must be closed
            # under the intra-pair dependencies, so we fall back to a
            # single core when an edge would cross chunks
            split = balanced_contiguous_split(
                dag.weights[members], n_cores
            )
            cores[members] = split
            # repair: any intra-superstep edge crossing cores pulls the
            # child onto the parent's core
            for v in members:
                for u in dag.parents(int(v)):
                    if sigma[u] == s and cores[u] != cores[v]:
                        cores[v] = cores[u]
        return Schedule(cores, sigma, n_cores)


def main() -> None:
    register_scheduler("levelpair", LevelPairScheduler)

    inst = DatasetInstance(
        "fem_band",
        rcm_mesh(120, 200, reach=1, lateral_prob=0.3,
                 seed=0).lower_triangle(),
    )
    machine = get_machine("intel_xeon_6238t")
    rows = []
    for name in ("levelpair", "wavefront", "growlocal"):
        r = run_instance(inst, make_scheduler(name), machine)
        rows.append([name, r.n_supersteps, f"{r.speedup:.2f}x"])
    print(format_table(
        ["scheduler", "supersteps", "simulated speed-up"],
        rows, title=f"custom scheduler on {inst.name} (22 cores)",
    ))


if __name__ == "__main__":
    main()
