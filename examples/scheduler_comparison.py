#!/usr/bin/env python
"""Compare every scheduler on matrices of different shapes — a miniature
version of the paper's Table 7.1.

Three structurally different instances (an RCM-ordered FEM band, an
Erdős–Rényi matrix, a narrow-band matrix) are scheduled by all algorithms;
for each we print supersteps, barrier reduction, work balance and the
simulated 22-core speed-up, illustrating where each algorithm's strengths
lie (GrowLocal everywhere, SpMP via asynchrony, HDagg's barrier problem on
deep DAGs).

Run:  python examples/scheduler_comparison.py
"""

from repro import get_machine
from repro.experiments.datasets import DatasetInstance
from repro.experiments.runner import run_instance
from repro.experiments.tables import format_table
from repro.matrix.generators import (
    erdos_renyi_lower,
    narrow_band_lower,
    rcm_mesh,
)
from repro.scheduler import make_scheduler


def main() -> None:
    machine = get_machine("intel_xeon_6238t")
    instances = [
        DatasetInstance(
            "fem_band",
            rcm_mesh(100, 200, reach=1, lateral_prob=0.3,
                     seed=0).lower_triangle(),
        ),
        DatasetInstance("erdos_renyi",
                        erdos_renyi_lower(8000, 2e-3, seed=1)),
        DatasetInstance("narrow_band",
                        narrow_band_lower(8000, 0.14, 10.0, seed=2)),
    ]
    algorithms = ("growlocal", "funnel+gl", "spmp", "hdagg", "bspg",
                  "wavefront")

    for inst in instances:
        rows = []
        for name in algorithms:
            r = run_instance(inst, make_scheduler(name), machine)
            rows.append([
                name, r.n_supersteps,
                f"{r.barrier_reduction:.1f}x",
                f"{r.speedup:.2f}x",
                f"{r.scheduling_seconds * 1e3:.0f} ms",
            ])
        print(format_table(
            ["scheduler", "supersteps", "barrier red.", "speed-up",
             "sched time"],
            rows,
            title=(f"{inst.name}: n={inst.n}, nnz={inst.nnz}, "
                   f"{inst.n_wavefronts} wavefronts"),
        ))
        print()


if __name__ == "__main__":
    main()
