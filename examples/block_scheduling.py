#!/usr/bin/env python
"""Block-parallel scheduling (Sections 3.1 and 7.8).

Splits the triangular matrix into diagonal blocks, schedules each block
independently (in a real deployment: in parallel), and shows the Table 7.7
trade-off: scheduling time drops super-linearly with the number of blocks
while the solve slows down moderately and the superstep count grows.

Run:  python examples/block_scheduling.py
"""

from repro import BlockScheduler, DAG, GrowLocalScheduler, get_machine
from repro.experiments.tables import format_table
from repro.machine.bsp_sim import simulate_bsp
from repro.machine.serial_sim import simulate_serial
from repro.matrix.generators import rcm_mesh
from repro.matrix.permute import permute_symmetric
from repro.scheduler.reorder import schedule_reordering


def main() -> None:
    lower = rcm_mesh(150, 250, reach=1, lateral_prob=0.3,
                     long_edge_prob=0.03, seed=3).lower_triangle()
    dag = DAG.from_lower_triangular(lower)
    machine = get_machine("intel_xeon_6238t")
    serial_cycles = simulate_serial(lower, machine)
    print(f"matrix: n={lower.n}, nnz={lower.nnz}")

    rows = []
    base_time = None
    for n_blocks in (1, 2, 4, 8, 16):
        block = BlockScheduler(GrowLocalScheduler(), n_blocks)
        schedule = block.schedule(dag, machine.n_cores)
        schedule.validate(dag)
        perm = schedule_reordering(schedule)
        mat = permute_symmetric(lower, perm)
        cycles = simulate_bsp(
            mat, schedule.reorder_vertices(perm), machine
        ).total_cycles
        par_time = block.parallel_scheduling_time
        if base_time is None:
            base_time = par_time
        rows.append([
            n_blocks,
            f"{base_time / par_time:.2f}x",
            schedule.n_supersteps,
            f"{serial_cycles / cycles:.2f}x",
        ])
    print(format_table(
        ["blocks", "sched speed-up", "supersteps", "solve speed-up"],
        rows, title="Block-parallel scheduling trade-off (Table 7.7)",
    ))


if __name__ == "__main__":
    main()
