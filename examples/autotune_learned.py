#!/usr/bin/env python
"""The learned tuner prior: cold tune -> train -> warm start.

Walks the full profile-reuse loop the autotuner is built around:

1. **cold** — tune a small seeded fleet with the cost-model prior; every
   run races finalists and appends ``(features, scheduler, seconds)``
   observations to the tuning profile (the training store);
2. **train** — fit the ridge-regression ensemble
   (:class:`~repro.tuner.LearnedTunerModel`) on the accumulated
   observations, one model per scheduler, leave-one-out predictive
   variance as the uncertainty gate;
3. **warm** — re-tune the fleet with ``Autotuner(prior="learned")``
   against the saved profile: every decision comes back from the
   profile, so **zero races run** (asserted), and a fresh unseen
   instance is ranked by pure inference — no per-candidate cost-model
   simulation.

Run:  python examples/autotune_learned.py
"""

from repro.exec import PlanCache
from repro.experiments.datasets import DatasetInstance
from repro.machine.model import get_machine
from repro.matrix.generators import erdos_renyi_lower, narrow_band_lower
from repro.tuner import Autotuner, LearnedTunerModel, TuningProfile

CANDIDATES = ("growlocal", "hdagg", "wavefront")
N_CORES = 8


def build_fleet() -> list[DatasetInstance]:
    fleet = []
    for i in range(8):
        n = 400 + 80 * i
        if i % 2 == 0:
            fleet.append(DatasetInstance(
                f"fleet_nb{i}",
                narrow_band_lower(n, 0.08, 6.0 + i, seed=i),
            ))
        else:
            fleet.append(DatasetInstance(
                f"fleet_er{i}", erdos_renyi_lower(n, 8.0 / n, seed=i),
            ))
    return fleet


def main() -> None:
    machine = get_machine("intel_xeon_6238t")
    fleet = build_fleet()
    cache = PlanCache()

    # 1. cold: cost-model prior, racing, observations accumulate
    profile = TuningProfile(machine=machine.name)
    cold_tuner = Autotuner(candidates=CANDIDATES, mode="simulated",
                           expected_solves=1e6, seed=0)
    cold = [
        cold_tuner.tune(inst, machine, n_cores=N_CORES,
                        plan_cache=cache, profile=profile)
        for inst in fleet
    ]
    print(f"cold pass: {cold_tuner.races_run} races, "
          f"{profile.n_observations} training observations")
    for d in cold:
        print(f"  {d.instance:10s} -> {d.scheduler:10s} ({d.source})")

    # 2. train the learned prior from the profile's training store
    model = LearnedTunerModel.fit(profile.observations)
    print(f"trained models for: {', '.join(model.schedulers)}")

    # 3. warm: learned prior + profile -> zero races on the whole fleet
    warm_tuner = Autotuner(candidates=CANDIDATES, mode="simulated",
                           expected_solves=1e6, seed=0,
                           prior="learned", model=model,
                           min_prediction_samples=3,
                           max_prediction_std=5.0)
    warm = [
        warm_tuner.tune(inst, machine, n_cores=N_CORES,
                        plan_cache=cache, profile=profile)
        for inst in fleet
    ]
    assert warm_tuner.races_run == 0, "warm path must not race"
    assert all(d.source == "profile" for d in warm)
    assert [d.scheduler for d in warm] == [d.scheduler for d in cold]
    print(f"warm pass: {warm_tuner.races_run} races "
          "(every decision served from the profile)")

    # an unseen instance: the learned prior ranks it by inference; the
    # uncertainty gate falls back to the cost model only where the
    # model is out of its depth
    fresh = DatasetInstance("fresh_nb",
                            narrow_band_lower(700, 0.08, 9.0, seed=99))
    decision = warm_tuner.tune(fresh, machine, n_cores=N_CORES,
                               plan_cache=cache, profile=profile)
    stats = warm_tuner.learned_prior
    print(f"fresh instance: picked {decision.scheduler} "
          f"({stats.n_predicted} candidates priced by inference, "
          f"{stats.n_fallback} by cost-model fallback)")


if __name__ == "__main__":
    main()
